#include "core/snapshot.h"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

TransactionalAppSpec TxSpec(AppId id, Megabytes mem = 500.0) {
  TransactionalAppSpec spec;
  spec.id = id;
  spec.name = "tx";
  spec.memory_per_instance = mem;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 10.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 900.0;
  return spec;
}

TEST(SnapshotTest, EntityIndexing) {
  SnapshotBuilder b(TinyCluster(2));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  b.AddJob(2, 2'000.0, 500.0, 750.0, 1.0, 4.0);
  b.AddTx(TxSpec(10), 50.0);
  const PlacementSnapshot snap = b.Build();

  EXPECT_EQ(snap.num_jobs(), 2);
  EXPECT_EQ(snap.num_tx(), 1);
  EXPECT_EQ(snap.num_entities(), 3);
  EXPECT_TRUE(snap.IsJobEntity(0));
  EXPECT_TRUE(snap.IsJobEntity(1));
  EXPECT_FALSE(snap.IsJobEntity(2));
  EXPECT_EQ(snap.EntityOfJob(1), 1);
  EXPECT_EQ(snap.EntityOfTx(0), 2);
  EXPECT_EQ(snap.JobOfEntity(1), 1);
  EXPECT_EQ(snap.TxOfEntity(2), 0);
  EXPECT_THROW(snap.JobOfEntity(2), std::logic_error);
  EXPECT_THROW(snap.TxOfEntity(0), std::logic_error);
}

TEST(SnapshotTest, CurrentPlacementFromViews) {
  SnapshotBuilder b(TinyCluster(3));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 1);
  b.AddJob(2, 2'000.0, 500.0, 750.0, 1.0, 4.0);  // queued
  b.AddTx(TxSpec(10), 50.0, {0, 2});
  const PlacementSnapshot snap = b.Build();

  const PlacementMatrix& p = snap.current_placement();
  EXPECT_EQ(p.at(0, 1), 1);
  EXPECT_EQ(p.InstanceCount(0), 1);
  EXPECT_EQ(p.InstanceCount(1), 0);
  EXPECT_EQ(p.at(2, 0), 1);
  EXPECT_EQ(p.at(2, 2), 1);
}

TEST(SnapshotTest, EntityMemory) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  b.AddTx(TxSpec(10, 333.0), 50.0);
  const PlacementSnapshot snap = b.Build();
  EXPECT_DOUBLE_EQ(snap.EntityMemory(0), 750.0);
  EXPECT_DOUBLE_EQ(snap.EntityMemory(1), 333.0);
}

TEST(SnapshotTest, FreeMemoryAccounting) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  b.AddJob(2, 2'000.0, 500.0, 750.0, 1.0, 4.0);
  const PlacementSnapshot snap = b.Build();

  PlacementMatrix p(2, 1);
  EXPECT_DOUBLE_EQ(snap.FreeMemory(p, 0), 2'000.0);
  p.at(0, 0) = 1;
  EXPECT_DOUBLE_EQ(snap.FreeMemory(p, 0), 1'250.0);
  p.at(1, 0) = 1;
  EXPECT_DOUBLE_EQ(snap.FreeMemory(p, 0), 500.0);
}

TEST(SnapshotTest, FeasibilityMemoryLimit) {
  // The §4.3 node hosts at most two 750 MB jobs.
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  b.AddJob(2, 2'000.0, 500.0, 750.0, 1.0, 4.0);
  b.AddJob(3, 4'000.0, 500.0, 750.0, 2.0, 1.0);
  const PlacementSnapshot snap = b.Build();

  PlacementMatrix p(3, 1);
  p.at(0, 0) = 1;
  p.at(1, 0) = 1;
  EXPECT_TRUE(snap.IsFeasible(p));
  p.at(2, 0) = 1;  // 2,250 MB > 2,000 MB
  EXPECT_FALSE(snap.IsFeasible(p));
}

TEST(SnapshotTest, FeasibilityJobSingleInstance) {
  SnapshotBuilder b(TinyCluster(2));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  const PlacementSnapshot snap = b.Build();
  PlacementMatrix p(1, 2);
  p.at(0, 0) = 1;
  p.at(0, 1) = 1;  // two instances of one job
  EXPECT_FALSE(snap.IsFeasible(p));
}

TEST(SnapshotTest, FeasibilityTxInstanceRules) {
  SnapshotBuilder b(TinyCluster(3));
  auto spec = TxSpec(10);
  spec.max_instances = 2;
  b.AddTx(spec, 50.0);
  const PlacementSnapshot snap = b.Build();

  PlacementMatrix p(1, 3);
  p.at(0, 0) = 2;  // two instances on one node
  EXPECT_FALSE(snap.IsFeasible(p));
  p.at(0, 0) = 1;
  p.at(0, 1) = 1;
  EXPECT_TRUE(snap.IsFeasible(p));
  p.at(0, 2) = 1;  // exceeds max_instances
  EXPECT_FALSE(snap.IsFeasible(p));
}

TEST(SnapshotTest, CaptureFromLiveObjects) {
  const ClusterSpec cluster = TinyCluster(2);
  JobQueue queue;
  JobProfile profile = JobProfile::SingleStage(4'000.0, 1'000.0, 750.0);
  Job& running = queue.Submit(std::make_unique<Job>(
      1, "r", profile, JobGoal::FromFactor(0.0, 5.0, 4.0)));
  queue.Submit(std::make_unique<Job>(2, "q", profile,
                                     JobGoal::FromFactor(1.0, 5.0, 4.0)));
  Job& suspended = queue.Submit(std::make_unique<Job>(
      3, "s", profile, JobGoal::FromFactor(0.0, 5.0, 4.0)));
  Job& done = queue.Submit(std::make_unique<Job>(
      4, "d", profile, JobGoal::FromFactor(0.0, 5.0, 4.0)));

  running.Place(1, 0.0, 0.0);
  running.SetAllocation(500.0);
  running.AdvanceTo(0.0, 2.0);
  suspended.Place(0, 0.0, 0.0);
  suspended.SetAllocation(100.0);
  suspended.Suspend(1.0);
  done.Place(0, 0.0, 0.0);
  done.SetAllocation(1'000.0);
  done.AdvanceTo(0.0, 10.0);
  ASSERT_TRUE(done.completed());

  const VmCostModel costs = VmCostModel::PaperMeasured();
  const PlacementSnapshot snap =
      PlacementSnapshot::Capture(cluster, 2.0, 1.0, queue, costs);

  // Completed jobs are excluded; order follows submission.
  ASSERT_EQ(snap.num_jobs(), 3);
  EXPECT_EQ(snap.job(0).id, 1);
  EXPECT_EQ(snap.job(0).status, JobStatus::kRunning);
  EXPECT_EQ(snap.job(0).current_node, 1);
  EXPECT_DOUBLE_EQ(snap.job(0).work_done, 1'000.0);
  EXPECT_DOUBLE_EQ(snap.job(0).place_overhead, 0.0);

  EXPECT_EQ(snap.job(1).id, 2);
  EXPECT_DOUBLE_EQ(snap.job(1).place_overhead, costs.BootCost());

  EXPECT_EQ(snap.job(2).id, 3);
  EXPECT_EQ(snap.job(2).status, JobStatus::kSuspended);
  EXPECT_DOUBLE_EQ(snap.job(2).place_overhead, costs.ResumeCost(750.0));

  EXPECT_EQ(snap.current_placement().at(0, 1), 1);
  EXPECT_EQ(snap.current_placement().InstanceCount(2), 0);
}

TEST(SnapshotTest, CaptureWithTxInputs) {
  const ClusterSpec cluster = TinyCluster(2);
  JobQueue queue;
  TransactionalApp app{TxSpec(77)};
  const PlacementSnapshot snap = PlacementSnapshot::Capture(
      cluster, 0.0, 1.0, queue, VmCostModel::Free(),
      {{&app, 123.0, {0, 1}}});
  ASSERT_EQ(snap.num_tx(), 1);
  EXPECT_EQ(snap.tx(0).id, 77);
  EXPECT_DOUBLE_EQ(snap.tx(0).arrival_rate, 123.0);
  EXPECT_EQ(snap.current_placement().at(0, 0), 1);
  EXPECT_EQ(snap.current_placement().at(0, 1), 1);
}

TEST(SnapshotTest, CapturesNodeHealthAtConstruction) {
  SnapshotBuilder b(TinyCluster(3));
  b.cluster.SetNodeOffline(1);
  b.cluster.SetNodeDegraded(2, 0.5);
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  const PlacementSnapshot snap = b.Build();

  EXPECT_TRUE(snap.NodeOnline(0));
  EXPECT_FALSE(snap.NodeOnline(1));
  EXPECT_TRUE(snap.NodeOnline(2));
  EXPECT_DOUBLE_EQ(snap.NodeAvailableCpu(0), 1'000.0);
  EXPECT_DOUBLE_EQ(snap.NodeAvailableCpu(1), 0.0);
  EXPECT_DOUBLE_EQ(snap.NodeAvailableCpu(2), 500.0);
  EXPECT_DOUBLE_EQ(snap.NodeAvailableMemory(1), 0.0);
  EXPECT_DOUBLE_EQ(snap.NodeAvailableMemory(2), 2'000.0);
  EXPECT_EQ(snap.NumOnlineNodes(), 2);

  // The view is frozen: later health changes do not leak in.
  b.cluster.SetNodeOnline(1);
  EXPECT_FALSE(snap.NodeOnline(1));
}

TEST(SnapshotTest, FeasibilityRejectsOfflineNode) {
  SnapshotBuilder b(TinyCluster(2));
  b.cluster.SetNodeOffline(1);
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  const PlacementSnapshot snap = b.Build();

  PlacementMatrix p(1, 2);
  p.at(0, 0) = 1;
  EXPECT_TRUE(snap.IsFeasible(p));
  p.at(0, 0) = 0;
  p.at(0, 1) = 1;
  EXPECT_FALSE(snap.IsFeasible(p));
}

TEST(SnapshotTest, FreeMemoryZeroOnOfflineNode) {
  SnapshotBuilder b(TinyCluster(2));
  b.cluster.SetNodeOffline(0);
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  const PlacementSnapshot snap = b.Build();
  const PlacementMatrix p(1, 2);
  EXPECT_DOUBLE_EQ(snap.FreeMemory(p, 0), 0.0);
  EXPECT_DOUBLE_EQ(snap.FreeMemory(p, 1), 2'000.0);
}

}  // namespace
}  // namespace mwp

#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mwp {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRunsSequentiallyOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int lane, std::size_t i) {
    EXPECT_EQ(lane, 0);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.concurrency(), 4);
  constexpr std::size_t kCount = 1'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](int lane, std::size_t i) {
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, 4);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(10, [&](int, std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](int, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](int, std::size_t i) {
                                  if (i == 17) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](int, std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTrySubmitTest, TaskRunsOnAWorker) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.TrySubmit([&] { ran.store(true); }));
  while (!ran.load()) std::this_thread::yield();
}

TEST(ThreadPoolTrySubmitTest, ZeroWorkerPoolRefusesInsteadOfRunningInline) {
  // TrySubmit promises asynchrony; with no workers there is nobody to be
  // asynchronous on, so the caller must get a refusal (and solve inline
  // itself), not a hidden blocking call.
  ThreadPool pool(0);
  ASSERT_FALSE(pool.TrySubmit([] {}));
}

TEST(ThreadPoolTrySubmitTest, NullTaskIsRefused) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.TrySubmit(std::function<void()>()));
}

TEST(ThreadPoolTrySubmitTest, SaturatedPoolShedsInsteadOfBlocking) {
  // Fill every worker with a gated task, then keep submitting: once the
  // one-deep pending slot is also taken, TrySubmit must return false
  // immediately — the controller falls back to a synchronous solve rather
  // than stalling its event loop.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> completed{0};
  auto gated = [&] {
    while (!release.load()) std::this_thread::yield();
    completed.fetch_add(1);
  };

  int accepted = 0;
  bool saw_shed = false;
  for (int i = 0; i < 8 && !saw_shed; ++i) {
    if (pool.TrySubmit(gated)) {
      ++accepted;
    } else {
      saw_shed = true;
    }
    // Give workers a moment to pick up pending tasks so acceptance counts
    // stay bounded by workers + the one pending slot.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_shed);
  EXPECT_GE(accepted, 1);

  release.store(true);
  while (completed.load() < accepted) std::this_thread::yield();
  EXPECT_EQ(completed.load(), accepted);
}

TEST(ThreadPoolTrySubmitTest, PoolRemainsUsableForParallelForAfterTasks) {
  ThreadPool pool(2);
  std::atomic<int> task_runs{0};
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pool.TrySubmit([&] { task_runs.fetch_add(1); })) {
      ++accepted;
      while (task_runs.load() < accepted) std::this_thread::yield();
    }
  }
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](int, std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTrySubmitTest, ThrowingTaskIsContainedAndPoolSurvives) {
  ThreadPool pool(1);
  ASSERT_TRUE(pool.TrySubmit([] { throw std::runtime_error("task boom"); }));
  // The exception is swallowed (logged) on the worker; subsequent work runs.
  std::atomic<bool> ran{false};
  while (!pool.TrySubmit([&] { ran.store(true); })) {
    std::this_thread::yield();
  }
  while (!ran.load()) std::this_thread::yield();
  std::atomic<int> count{0};
  pool.ParallelFor(4, [&](int, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

}  // namespace
}  // namespace mwp

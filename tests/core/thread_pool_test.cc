#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace mwp {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRunsSequentiallyOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int lane, std::size_t i) {
    EXPECT_EQ(lane, 0);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.concurrency(), 4);
  constexpr std::size_t kCount = 1'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](int lane, std::size_t i) {
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, 4);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(10, [&](int, std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](int, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](int, std::size_t i) {
                                  if (i == 17) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](int, std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 8);
}

}  // namespace
}  // namespace mwp

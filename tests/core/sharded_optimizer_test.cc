#include "core/sharded_optimizer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/apc_controller.h"
#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

TransactionalAppSpec TxSpec(AppId id) {
  TransactionalAppSpec spec;
  spec.id = id;
  spec.name = "tx-" + std::to_string(id);
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 4'000.0;
  return spec;
}

/// Random small snapshot in the §4.3 shape: a few nodes, a mix of running
/// and queued jobs, sometimes a transactional app. Running jobs are dealt
/// round-robin, at most two per node, so the incumbent is always feasible
/// (two 800 MB instances plus a 300 MB tx instance fit a 2,000 MB node).
void FillRandom(SnapshotBuilder& b, Rng& rng, int nodes) {
  const int jobs = static_cast<int>(rng.UniformInt(1, 7));
  int running_count = 0;
  for (int j = 0; j < jobs; ++j) {
    const bool running =
        rng.Uniform01() < 0.5 && running_count < 2 * nodes;
    const NodeId node =
        running ? static_cast<NodeId>(running_count++ % nodes) : kInvalidNode;
    b.AddJob(j + 1, rng.Uniform(1'000.0, 30'000.0), rng.Uniform(200.0, 900.0),
             rng.Uniform(300.0, 800.0), 0.0, rng.Uniform(1.2, 5.0),
             running ? JobStatus::kRunning : JobStatus::kNotStarted, node);
  }
  if (rng.Uniform01() < 0.5) {
    b.AddTx(TxSpec(100), rng.Uniform(100.0, 800.0),
            rng.Uniform01() < 0.5 ? std::vector<NodeId>{0}
                                  : std::vector<NodeId>{});
  }
}

TEST(ShardedOptimizerTest, OneCellBitExactWithMonolithic) {
  // Property: with every node in a single cell the sharded solve IS the
  // monolithic solve — identical placement matrix and identical sorted
  // utility vector, bit for bit, over randomized snapshots.
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = static_cast<int>(rng.UniformInt(1, 4));
    SnapshotBuilder b(TinyCluster(nodes));
    FillRandom(b, rng, nodes);
    const PlacementSnapshot snap = b.Build();

    const auto mono = PlacementOptimizer(&snap).Optimize();
    ShardedPlacementOptimizer::Options options;
    options.cell_size = 64;  // >= nodes: one cell
    const auto sharded = ShardedPlacementOptimizer(&snap, options).Optimize();

    ASSERT_EQ(sharded.num_cells, 1) << "trial " << trial;
    EXPECT_EQ(sharded.cross_cell_transfers, 0) << "trial " << trial;
    EXPECT_EQ(sharded.global.placement, mono.placement) << "trial " << trial;
    EXPECT_EQ(sharded.global.evaluation.sorted_utilities,
              mono.evaluation.sorted_utilities)
        << "trial " << trial;
    EXPECT_EQ(sharded.global.incumbent_utilities, mono.incumbent_utilities)
        << "trial " << trial;
    EXPECT_EQ(sharded.global.used_shortcut, mono.used_shortcut)
        << "trial " << trial;
  }
}

TEST(ShardedOptimizerTest, DeterministicAcrossCellThreadCounts) {
  SnapshotBuilder b(TinyCluster(12));
  Rng rng(7);
  int running_count = 0;
  for (int j = 0; j < 20; ++j) {
    const bool running = j % 3 != 0;  // round-robin: at most 2 per node
    b.AddJob(j + 1, rng.Uniform(5'000.0, 40'000.0), rng.Uniform(300.0, 900.0),
             rng.Uniform(400.0, 800.0), 0.0, rng.Uniform(1.3, 4.0),
             running ? JobStatus::kRunning : JobStatus::kNotStarted,
             running ? static_cast<NodeId>(running_count++ % 12)
                     : kInvalidNode);
  }
  b.AddTx(TxSpec(100), 500.0, {0, 4, 8});
  const PlacementSnapshot snap = b.Build();

  ShardedPlacementOptimizer::Options options;
  options.cell_size = 4;  // 3 cells
  PlacementMatrix first(0, 0);
  std::vector<Utility> first_rp;
  for (const int threads : {1, 2, 8}) {
    options.cell_threads = threads;
    const ShardedPlacementOptimizer optimizer(&snap, options);
    const auto result = optimizer.Optimize();
    EXPECT_EQ(result.num_cells, 3);
    EXPECT_TRUE(snap.IsFeasible(result.global.placement))
        << "threads=" << threads;
    if (threads == 1) {
      first = result.global.placement;
      first_rp = result.global.evaluation.sorted_utilities;
    } else {
      EXPECT_EQ(result.global.placement, first) << "threads=" << threads;
      EXPECT_EQ(result.global.evaluation.sorted_utilities, first_rp)
          << "threads=" << threads;
    }
  }
}

TEST(ShardedOptimizerTest, PartitionSeedIsDeterministic) {
  SnapshotBuilder b(TinyCluster(8));
  for (int j = 0; j < 10; ++j) {
    b.AddJob(j + 1, 20'000.0, 600.0, 700.0, 0.0, 2.0 + 0.2 * j);
  }
  const PlacementSnapshot snap = b.Build();
  ShardedPlacementOptimizer::Options options;
  options.cell_size = 3;
  options.partition_seed = 99;
  const auto a = ShardedPlacementOptimizer(&snap, options).Optimize();
  const auto b2 = ShardedPlacementOptimizer(&snap, options).Optimize();
  EXPECT_EQ(a.global.placement, b2.global.placement);
  EXPECT_EQ(a.global.evaluation.sorted_utilities,
            b2.global.evaluation.sorted_utilities);
  EXPECT_TRUE(snap.IsFeasible(a.global.placement));
}

TEST(ShardedOptimizerTest, CrossCellChurnIsBounded) {
  // All load lands in cell 0 (nodes 0-1); cell 1 (nodes 2-3) is idle. The
  // rebalancer may move jobs over, but never more than the bound.
  SnapshotBuilder b(TinyCluster(4));
  for (int j = 0; j < 4; ++j) {
    b.AddJob(j + 1, 50'000.0, 1'000.0, 900.0, 0.0, 1.5,
             JobStatus::kRunning, static_cast<NodeId>(j / 2));
  }
  const PlacementSnapshot snap = b.Build();

  ShardedPlacementOptimizer::Options options;
  options.cell_size = 2;
  options.max_cross_cell_moves = 2;
  const auto bounded = ShardedPlacementOptimizer(&snap, options).Optimize();
  EXPECT_EQ(bounded.num_cells, 2);
  EXPECT_LE(bounded.cross_cell_transfers, 2);
  EXPECT_LE(bounded.cross_cell_migrations, bounded.cross_cell_transfers);
  EXPECT_GE(bounded.cross_cell_transfers, 1)
      << "an idle cell next to an overloaded one must attract work";
  EXPECT_TRUE(snap.IsFeasible(bounded.global.placement));

  options.max_cross_cell_moves = 0;  // rebalance disabled
  const auto frozen = ShardedPlacementOptimizer(&snap, options).Optimize();
  EXPECT_EQ(frozen.cross_cell_transfers, 0);
  EXPECT_EQ(frozen.cross_cell_migrations, 0);
  // Without transfers every job stays in its home cell: all four started on
  // nodes 0-1, so none may land on cell 1's nodes 2-3.
  for (int j = 0; j < 4; ++j) {
    for (int n = 0; n < 4; ++n) {
      if (frozen.global.placement.at(j, n) > 0) {
        EXPECT_LT(n, 2) << "job " << j << " left its cell";
      }
    }
  }
  EXPECT_TRUE(snap.IsFeasible(frozen.global.placement));
}

TEST(ShardedOptimizerTest, NeverWorseThanPerCellUnionAndFeasible) {
  Rng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    SnapshotBuilder b(TinyCluster(6));
    FillRandom(b, rng, 6);
    const PlacementSnapshot snap = b.Build();
    ShardedPlacementOptimizer::Options options;
    options.cell_size = 2;
    options.partition_seed = static_cast<std::uint64_t>(trial);
    const auto result = ShardedPlacementOptimizer(&snap, options).Optimize();
    EXPECT_TRUE(snap.IsFeasible(result.global.placement)) << "trial " << trial;
    EXPECT_EQ(result.num_cells, 3) << "trial " << trial;
  }
}

TEST(ShardedOptimizerTest, ControllerShardedSmoke) {
  // The controller path end to end at a scale no monolithic test runs: 100
  // nodes, sharded into 25-node cells, two control cycles. Checks the cycle
  // stats carry the sharding observability fields.
  const ClusterSpec cluster =
      ClusterSpec::Uniform(100, NodeSpec{1, 1'000.0, 2'000.0});
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 600.0;
  cfg.costs = VmCostModel::Free();
  cfg.shard_cell_size = 25;
  ApcController controller(&cluster, &queue, cfg);

  for (int j = 0; j < 50; ++j) {
    JobProfile p = JobProfile::SingleStage(600'000.0, 800.0, 700.0);
    queue.Submit(std::make_unique<Job>(
        j + 1, "job-" + std::to_string(j), p,
        JobGoal::FromFactor(0.0, 2.5, p.min_execution_time())));
  }
  controller.Attach(sim, 0.0);
  sim.RunUntil(1'200.0);  // cycles at t=0 and t=600

  ASSERT_GE(controller.cycles().size(), 2u);
  int placed = 0;
  for (const CycleStats& stats : controller.cycles()) {
    EXPECT_EQ(stats.num_cells, 4);
    EXPECT_EQ(stats.cell_solver_seconds.size(), 4u);
    placed += stats.starts;
  }
  EXPECT_GT(placed, 0) << "the sharded controller must start jobs";
}

}  // namespace
}  // namespace mwp

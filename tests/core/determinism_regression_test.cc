// Regression tests for the determinism-audit fixes (see
// tools/analysis/determinism_audit.py and docs/ALGORITHMS.md §15): the
// audited changes — const-qualifying HypColumnCache's evaluation context
// and EventInbox's ring mask, and the allowlisted timing accumulations in
// the sharded optimizer — must leave every decision bit-for-bit unchanged.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/evaluation_cache.h"
#include "core/hypothetical_rpf.h"
#include "core/sharded_optimizer.h"
#include "svc/event_inbox.h"
#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

// The cache's t_eval/grid context is immutable after construction (audited
// as AUD-L1; both are const so Get can read them without the mutex). Cold
// and warm lookups must intern one column per key and return the exact
// doubles a fresh cache computes for the same state.
TEST(DeterminismRegression, ColumnCacheColdAndWarmBitExact) {
  const JobProfile profile =
      JobProfile::SingleStage(1'000'000.0, 2'000.0, 1'000.0);
  const JobGoal goal = JobGoal::FromFactor(0.0, 3.0, 500.0);
  const std::vector<double> grid = HypotheticalRpf::DefaultGrid();

  HypColumnCache cache(600.0, grid, 2);
  HypColumnCache fresh(600.0, grid, 2);
  for (int s = 0; s < 8; ++s) {
    const HypotheticalJobState state{&profile, goal, 40'000.0 * s,
                                     (s % 3) * 10.0};
    const HypotheticalRpf::Column* cold = cache.Get(s % 2, state);
    const HypotheticalRpf::Column* warm = cache.Get(s % 2, state);
    ASSERT_NE(cold, nullptr);
    // Interned: the warm hit is the cold pointer.
    EXPECT_EQ(cold, warm);
    // And the stored column is exactly what an independent cache computes.
    const HypotheticalRpf::Column* other = fresh.Get(s % 2, state);
    EXPECT_EQ(cold->u_max, other->u_max);
    EXPECT_EQ(cold->speed_at_max, other->speed_at_max);
    EXPECT_EQ(cold->w, other->w);
    EXPECT_EQ(cold->v, other->v);
  }
  EXPECT_EQ(cache.misses(), 8u);
  EXPECT_EQ(cache.hits(), 8u);
}

std::string Fingerprint(const PlacementOptimizer::Result& r) {
  std::ostringstream os;
  os << r.evaluations << '|';
  for (Utility u : r.evaluation.sorted_utilities) os << u << ',';
  os << '|' << r.evaluation.changes.size();
  return os.str();
}

TransactionalAppSpec TxSpec(AppId id) {
  TransactionalAppSpec spec;
  spec.id = id;
  spec.name = "tx-" + std::to_string(id);
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 4'000.0;
  return spec;
}

// The per-cell stopwatch accumulation in solve_cell is allowlisted as
// order-fixed because each pool index writes only its own
// cell_solve_seconds slot; the decision outputs must therefore be
// identical for every lane count, with one timing slot per cell.
TEST(DeterminismRegression, ShardedDecisionsInvariantAcrossLaneCounts) {
  Rng rng(77);
  SnapshotBuilder b(TinyCluster(6));
  for (int j = 0; j < 8; ++j) {
    const bool running = j < 4;
    b.AddJob(j + 1, rng.Uniform(2'000.0, 30'000.0), rng.Uniform(200.0, 900.0),
             rng.Uniform(300.0, 700.0), 0.0, rng.Uniform(1.5, 4.0),
             running ? JobStatus::kRunning : JobStatus::kNotStarted,
             running ? static_cast<NodeId>(j % 6) : kInvalidNode);
  }
  b.AddTx(TxSpec(100), 400.0, {0});
  const PlacementSnapshot snap = b.Build();

  ShardedPlacementOptimizer::Options base;
  base.cell_size = 2;  // 6 nodes -> 3 cells
  base.cell_threads = 1;
  const ShardedPlacementOptimizer::Result want =
      ShardedPlacementOptimizer(&snap, base).Optimize();
  ASSERT_EQ(want.num_cells, 3);
  ASSERT_EQ(want.cell_solve_seconds.size(), 3u);

  for (int lanes : {2, 4}) {
    SCOPED_TRACE("cell_threads=" + std::to_string(lanes));
    ShardedPlacementOptimizer::Options options = base;
    options.cell_threads = lanes;
    const ShardedPlacementOptimizer::Result got =
        ShardedPlacementOptimizer(&snap, options).Optimize();
    EXPECT_EQ(got.global.placement, want.global.placement);
    EXPECT_EQ(got.global.evaluation.sorted_utilities,
              want.global.evaluation.sorted_utilities);
    EXPECT_EQ(Fingerprint(got.global), Fingerprint(want.global));
    // One stopwatch slot per cell regardless of lane count.
    EXPECT_EQ(got.cell_solve_seconds.size(), want.cell_solve_seconds.size());
  }
}

// The ring mask is const now (audited as AUD-L1): capacity rounding and
// FIFO order through the mask must be unchanged.
TEST(DeterminismRegression, EventInboxMaskRoundingAndFifoUnchanged) {
  EventInbox inbox(5);  // rounds up to 8
  EXPECT_EQ(inbox.capacity(), 8u);

  for (int i = 0; i < 8; ++i) {
    ControlEvent ev;
    ev.kind = ControlEventKind::kJobArrival;
    ev.job = i + 1;
    ev.time = static_cast<Seconds>(i);
    EXPECT_TRUE(inbox.TryPush(ev));
  }
  ControlEvent overflow;
  overflow.job = 99;
  EXPECT_FALSE(inbox.TryPush(overflow));  // full ring sheds, never blocks

  std::vector<ControlEvent> drained;
  EXPECT_EQ(inbox.DrainInto(drained, 64), 8u);
  ASSERT_EQ(drained.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(drained[static_cast<std::size_t>(i)].job, i + 1);
  }
  EXPECT_EQ(inbox.pushed(), 8u);
  EXPECT_EQ(inbox.dropped(), 1u);
}

}  // namespace
}  // namespace mwp

#include "core/job_rpf.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

// J1 of §4.3: 4,000 Mc, max 1,000 MHz, goal 20 s from t = 0.
struct Fixture {
  JobProfile profile = JobProfile::SingleStage(4'000.0, 1'000.0, 750.0);
  JobGoal goal = JobGoal::FromFactor(0.0, 5.0, 4.0);
};

TEST(JobCompletionRpfTest, UtilityAtFullSpeed) {
  Fixture f;
  JobCompletionRpf rpf(&f.profile, f.goal, 0.0, /*ref_time=*/0.0);
  // Completing at 4 s: u = (20-4)/20 = 0.8.
  EXPECT_NEAR(rpf.UtilityAt(1'000.0), 0.8, 1e-9);
  EXPECT_NEAR(rpf.max_utility(), 0.8, 1e-9);
}

TEST(JobCompletionRpfTest, UtilityAtHalfSpeed) {
  Fixture f;
  JobCompletionRpf rpf(&f.profile, f.goal, 0.0, 0.0);
  // 8 s completion: u = (20-8)/20 = 0.6.
  EXPECT_NEAR(rpf.UtilityAt(500.0), 0.6, 1e-9);
}

TEST(JobCompletionRpfTest, ZeroAllocationIsFloor) {
  Fixture f;
  JobCompletionRpf rpf(&f.profile, f.goal, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(rpf.UtilityAt(0.0), kUtilityFloor);
}

TEST(JobCompletionRpfTest, ProgressImprovesUtility) {
  Fixture f;
  JobCompletionRpf fresh(&f.profile, f.goal, 0.0, 2.0);
  JobCompletionRpf advanced(&f.profile, f.goal, 2'000.0, 2.0);
  EXPECT_GT(advanced.UtilityAt(500.0), fresh.UtilityAt(500.0));
}

TEST(JobCompletionRpfTest, AllocationForRoundTrips) {
  Fixture f;
  JobCompletionRpf rpf(&f.profile, f.goal, 1'000.0, 1.0);
  for (Utility u : {-1.0, -0.2, 0.0, 0.3, 0.5, 0.7}) {
    if (u >= rpf.max_utility()) continue;
    const MHz w = rpf.AllocationFor(u);
    EXPECT_NEAR(rpf.UtilityAt(w), u, 1e-6) << "u=" << u;
  }
}

TEST(JobCompletionRpfTest, AllocationForMatchesEq3ClosedForm) {
  Fixture f;
  JobCompletionRpf rpf(&f.profile, f.goal, 0.0, 0.0);
  // Eq. 3: ω(u) = remaining / (t(u) − t_now); u = 0.5 → t = 10 → 400 MHz.
  EXPECT_NEAR(rpf.AllocationFor(0.5), 400.0, 1e-9);
}

TEST(JobCompletionRpfTest, UnreachableTargetReturnsSaturation) {
  Fixture f;
  JobCompletionRpf rpf(&f.profile, f.goal, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(rpf.AllocationFor(0.95), 1'000.0);
  EXPECT_DOUBLE_EQ(rpf.saturation_allocation(), 1'000.0);
}

TEST(JobCompletionRpfTest, LateReferenceTimeLowersMaxUtility) {
  Fixture f;
  JobCompletionRpf early(&f.profile, f.goal, 0.0, 0.0);
  JobCompletionRpf late(&f.profile, f.goal, 0.0, 10.0);
  EXPECT_NEAR(late.max_utility(), (20.0 - 14.0) / 20.0, 1e-9);
  EXPECT_LT(late.max_utility(), early.max_utility());
}

TEST(JobCompletionRpfTest, MissedGoalGivesNegativeUtility) {
  Fixture f;
  // Reference time past the goal: even max speed violates the SLA.
  JobCompletionRpf rpf(&f.profile, f.goal, 0.0, 19.0);
  EXPECT_LT(rpf.max_utility(), 0.0);
  EXPECT_LT(rpf.UtilityAt(1'000.0), 0.0);
}

TEST(JobCompletionRpfTest, CompletedJobRejected) {
  Fixture f;
  EXPECT_THROW(JobCompletionRpf(&f.profile, f.goal, 4'000.0, 0.0),
               std::logic_error);
}

TEST(JobCompletionRpfTest, MonotoneUtility) {
  Fixture f;
  JobCompletionRpf rpf(&f.profile, f.goal, 500.0, 1.0);
  Utility prev = rpf.UtilityAt(0.0);
  for (MHz w = 10.0; w <= 1'500.0; w += 10.0) {
    const Utility u = rpf.UtilityAt(w);
    EXPECT_GE(u, prev - 1e-12);
    prev = u;
  }
}

TEST(JobCompletionRpfTest, MultiStageCompletionTime) {
  JobProfile p({JobStage{1'000.0, 1'000.0, 0.0, 100.0},
                JobStage{2'000.0, 500.0, 0.0, 100.0}});
  JobGoal goal = JobGoal::FromFactor(0.0, 4.0, p.min_execution_time());
  JobCompletionRpf rpf(&p, goal, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(rpf.CompletionTime(1'000.0), 5.0);
  EXPECT_DOUBLE_EQ(rpf.CompletionTime(500.0), 6.0);
}

}  // namespace
}  // namespace mwp

// Shared fixtures for core-module tests: small clusters and snapshots in
// the shape of the paper's §4.3 example.
#pragma once

#include <memory>
#include <vector>

#include "core/snapshot.h"
#include "web/transactional_app.h"

namespace mwp::testing_fixtures {

/// One 1,000 MHz / 2,000 MB node — the §4.3 machine.
inline ClusterSpec TinyCluster(int nodes = 1) {
  return ClusterSpec::Uniform(nodes, NodeSpec{1, 1'000.0, 2'000.0});
}

/// A JobView for a single-stage job. The profile must outlive the view.
inline JobView MakeJobView(AppId id, const JobProfile* profile,
                           const JobGoal& goal, Megacycles done = 0.0,
                           JobStatus status = JobStatus::kNotStarted,
                           NodeId node = kInvalidNode) {
  JobView v;
  v.id = id;
  v.profile = profile;
  v.goal = goal;
  v.work_done = done;
  v.status = status;
  v.current_node = node;
  v.memory = profile->max_memory();
  v.max_speed = profile->stage(0).max_speed;
  v.min_speed = profile->stage(0).min_speed;
  return v;
}

/// Owns the profiles its views point at.
struct SnapshotBuilder {
  ClusterSpec cluster;
  Seconds now = 0.0;
  Seconds cycle = 1.0;
  std::vector<std::unique_ptr<JobProfile>> profiles;
  std::vector<JobView> jobs;
  std::vector<std::unique_ptr<TransactionalApp>> tx_owned;
  std::vector<TxView> tx_views;

  explicit SnapshotBuilder(ClusterSpec c) : cluster(std::move(c)) {}

  JobView& AddJob(AppId id, Megacycles work, MHz max_speed, Megabytes memory,
                  Seconds submit, double factor,
                  JobStatus status = JobStatus::kNotStarted,
                  NodeId node = kInvalidNode, Megacycles done = 0.0) {
    profiles.push_back(std::make_unique<JobProfile>(
        JobProfile::SingleStage(work, max_speed, memory)));
    jobs.push_back(MakeJobView(
        id, profiles.back().get(),
        JobGoal::FromFactor(submit, factor,
                            profiles.back()->min_execution_time()),
        done, status, node));
    return jobs.back();
  }

  TxView& AddTx(TransactionalAppSpec spec, double arrival_rate,
                std::vector<NodeId> nodes = {}) {
    tx_owned.push_back(std::make_unique<TransactionalApp>(std::move(spec)));
    TxView v;
    v.id = tx_owned.back()->id();
    v.app = tx_owned.back().get();
    v.arrival_rate = arrival_rate;
    v.memory = tx_owned.back()->spec().memory_per_instance;
    v.max_instances = tx_owned.back()->spec().max_instances;
    v.current_nodes = std::move(nodes);
    tx_views.push_back(v);
    return tx_views.back();
  }

  PlacementSnapshot Build() const {
    return PlacementSnapshot(&cluster, now, cycle, jobs, tx_views);
  }
};

}  // namespace mwp::testing_fixtures

#include "core/snapshot_slice.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

TransactionalAppSpec TxSpec(AppId id, int max_instances = 0) {
  TransactionalAppSpec spec;
  spec.id = id;
  spec.name = "tx-" + std::to_string(id);
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 4'000.0;
  spec.max_instances = max_instances;
  return spec;
}

TEST(CellPartitionTest, ContiguousChunksWithSeedZero) {
  const CellPartition p = CellPartition::Build(10, 4, 0);
  ASSERT_EQ(p.num_cells(), 3);
  EXPECT_EQ(p.cells[0], (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(p.cells[1], (std::vector<NodeId>{4, 5, 6, 7}));
  EXPECT_EQ(p.cells[2], (std::vector<NodeId>{8, 9}));
  for (int c = 0; c < p.num_cells(); ++c) {
    for (const NodeId n : p.cells[c]) {
      EXPECT_EQ(p.node_cell[static_cast<std::size_t>(n)], c);
    }
  }
}

TEST(CellPartitionTest, SeededShuffleIsDeterministicAndComplete) {
  const CellPartition a = CellPartition::Build(20, 8, 42);
  const CellPartition b = CellPartition::Build(20, 8, 42);
  EXPECT_EQ(a.cells, b.cells);
  EXPECT_EQ(a.node_cell, b.node_cell);
  // Every node appears in exactly one cell, ascending within its cell.
  std::vector<NodeId> seen;
  for (const auto& cell : a.cells) {
    EXPECT_FALSE(cell.empty());
    EXPECT_LE(cell.size(), 8u);
    EXPECT_TRUE(std::is_sorted(cell.begin(), cell.end()));
    seen.insert(seen.end(), cell.begin(), cell.end());
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 20u);
  for (NodeId n = 0; n < 20; ++n) EXPECT_EQ(seen[static_cast<std::size_t>(n)], n);
}

TEST(SnapshotSliceTest, SingleCellSliceIsIdentity) {
  SnapshotBuilder b(TinyCluster(3));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  b.AddJob(2, 2'000.0, 500.0, 750.0, 0.0, 4.0);
  b.AddTx(TxSpec(9), 400.0, {1, 2});
  const PlacementSnapshot snap = b.Build();

  const CellPartition partition = CellPartition::Build(3, 32, 0);
  ASSERT_EQ(partition.num_cells(), 1);
  const CellAssignment assignment = CellAssignment::Build(snap, partition);
  const SnapshotSlice slice(snap, partition, assignment, 0);
  const PlacementSnapshot& local = slice.snapshot();

  ASSERT_EQ(local.num_nodes(), snap.num_nodes());
  ASSERT_EQ(local.num_entities(), snap.num_entities());
  EXPECT_EQ(local.current_placement(), snap.current_placement());
  for (int j = 0; j < snap.num_jobs(); ++j) {
    EXPECT_EQ(local.job(j).status, snap.job(j).status);
    EXPECT_EQ(local.job(j).current_node, snap.job(j).current_node);
    EXPECT_EQ(local.job(j).place_overhead, snap.job(j).place_overhead);
  }
  EXPECT_EQ(local.tx(0).arrival_rate, snap.tx(0).arrival_rate);
  EXPECT_EQ(local.tx(0).max_instances, snap.tx(0).max_instances);
  EXPECT_EQ(local.tx(0).current_nodes, snap.tx(0).current_nodes);
  for (int n = 0; n < snap.num_nodes(); ++n) {
    EXPECT_EQ(local.NodeOnline(n), snap.NodeOnline(n));
    EXPECT_EQ(local.NodeAvailableCpu(n), snap.NodeAvailableCpu(n));
    EXPECT_EQ(local.NodeAvailableMemory(n), snap.NodeAvailableMemory(n));
  }
}

TEST(SnapshotSliceTest, InheritsFrozenHealthNotLiveCluster) {
  ClusterSpec cluster = TinyCluster(4);
  cluster.SetNodeDegraded(1, 0.5);
  cluster.SetNodeOffline(3);
  SnapshotBuilder b(std::move(cluster));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  const PlacementSnapshot snap = b.Build();

  const CellPartition partition = CellPartition::Build(4, 2, 0);
  const CellAssignment assignment = CellAssignment::Build(snap, partition);
  const SnapshotSlice left(snap, partition, assignment, 0);
  const SnapshotSlice right(snap, partition, assignment, 1);

  EXPECT_EQ(left.snapshot().NodeAvailableCpu(1), snap.NodeAvailableCpu(1));
  EXPECT_LT(left.snapshot().NodeAvailableCpu(1),
            left.snapshot().NodeAvailableCpu(0));
  EXPECT_FALSE(right.snapshot().NodeOnline(1));  // global node 3, offline
  EXPECT_TRUE(right.snapshot().NodeOnline(0));   // global node 2
}

TEST(SnapshotSliceTest, PlacedJobFollowsItsHostCell) {
  SnapshotBuilder b(TinyCluster(4));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 3);
  b.AddJob(2, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  const PlacementSnapshot snap = b.Build();
  const CellPartition partition = CellPartition::Build(4, 2, 0);
  const CellAssignment assignment = CellAssignment::Build(snap, partition);
  EXPECT_EQ(assignment.job_cell[0], 1);
  EXPECT_EQ(assignment.job_cell[1], 0);

  const SnapshotSlice slice(snap, partition, assignment, 1);
  ASSERT_EQ(slice.snapshot().num_jobs(), 1);
  EXPECT_EQ(slice.LocalJobOf(0), 0);
  EXPECT_EQ(slice.LocalJobOf(1), -1);
  // Host keeps its placement, remapped to the local node id (3 -> 1).
  EXPECT_EQ(slice.snapshot().job(0).current_node, 1);
  EXPECT_EQ(slice.snapshot().job(0).status, JobStatus::kRunning);
}

TEST(SnapshotSliceTest, TransplantPricesMoveAsMigration) {
  SnapshotBuilder b(TinyCluster(4));
  b.now = 100.0;
  JobView& v = b.AddJob(1, 40'000.0, 1'000.0, 750.0, 0.0, 5.0,
                        JobStatus::kRunning, 0);
  v.overhead_until = 102.0;  // 2 s of an in-flight operation still to pay
  v.migrate_overhead = 5.0;
  const PlacementSnapshot snap = b.Build();
  const CellPartition partition = CellPartition::Build(4, 2, 0);
  // Force the job into the foreign cell, as the rebalancer's probe does.
  CellAssignment assignment = CellAssignment::Build(snap, partition);
  assignment.job_cell[0] = 1;

  const SnapshotSlice slice(snap, partition, assignment, 1);
  ASSERT_EQ(slice.snapshot().num_jobs(), 1);
  const JobView& moved = slice.snapshot().job(0);
  // Newcomer: unplaced, with the migration (plus pending overhead) charged
  // as placement latency — JobExecStart prices it like a monolithic migrate.
  EXPECT_EQ(moved.status, JobStatus::kNotStarted);
  EXPECT_EQ(moved.current_node, kInvalidNode);
  EXPECT_DOUBLE_EQ(moved.place_overhead, 7.0);
  EXPECT_DOUBLE_EQ(moved.overhead_until, 0.0);
}

TEST(SnapshotSliceTest, ArrivalRateSplitsByInstanceShare) {
  SnapshotBuilder b(TinyCluster(4));
  b.AddTx(TxSpec(7), 900.0, {0, 1, 2});  // 2 instances in cell 0, 1 in cell 1
  const PlacementSnapshot snap = b.Build();
  const CellPartition partition = CellPartition::Build(4, 2, 0);
  const CellAssignment assignment = CellAssignment::Build(snap, partition);

  const SnapshotSlice left(snap, partition, assignment, 0);
  const SnapshotSlice right(snap, partition, assignment, 1);
  ASSERT_EQ(left.snapshot().num_tx(), 1);
  ASSERT_EQ(right.snapshot().num_tx(), 1);
  EXPECT_DOUBLE_EQ(left.snapshot().tx(0).arrival_rate, 900.0 * 2 / 3);
  EXPECT_DOUBLE_EQ(right.snapshot().tx(0).arrival_rate, 900.0 / 3);
  EXPECT_DOUBLE_EQ(left.snapshot().tx(0).arrival_rate +
                       right.snapshot().tx(0).arrival_rate,
                   900.0);
}

TEST(SnapshotSliceTest, PerCellInstanceCapsComposeToGlobalCap) {
  SnapshotBuilder b(TinyCluster(4));
  // Cap 3, instances on nodes 0 and 2: one per cell, home may grow.
  b.AddTx(TxSpec(7, /*max_instances=*/3), 600.0, {0, 2});
  const PlacementSnapshot snap = b.Build();
  const CellPartition partition = CellPartition::Build(4, 2, 0);
  const CellAssignment assignment = CellAssignment::Build(snap, partition);

  const SnapshotSlice home(snap, partition, assignment,
                           assignment.tx_home[0]);
  const int other_cell = 1 - assignment.tx_home[0];
  const SnapshotSlice other(snap, partition, assignment, other_cell);
  // Non-home cells are frozen at their current footprint; the home cell may
  // use whatever the global cap leaves after the other cells' instances.
  EXPECT_EQ(other.snapshot().tx(0).max_instances, 1);
  EXPECT_EQ(home.snapshot().tx(0).max_instances, 2);
  EXPECT_LE(home.snapshot().tx(0).max_instances +
                other.snapshot().tx(0).max_instances,
            3);
}

TEST(SnapshotSliceTest, PinsIntersectedSeparationsWhenBothPresent) {
  SnapshotBuilder b(TinyCluster(4));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  b.AddJob(2, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 1);
  b.AddJob(3, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 2);
  PlacementConstraints constraints;
  constraints.PinTo(1, {0, 1, 3});  // spans both cells
  constraints.Separate(1, 2);       // both in cell 0
  constraints.Separate(1, 3);       // app 3 lives in cell 1
  PlacementSnapshot snap = b.Build();
  snap.set_constraints(constraints);

  const CellPartition partition = CellPartition::Build(4, 2, 0);
  const CellAssignment assignment = CellAssignment::Build(snap, partition);
  const SnapshotSlice left(snap, partition, assignment, 0);
  const PlacementConstraints& local = left.snapshot().constraints();

  // App 1's pin is intersected with cell 0's nodes {0,1}.
  const auto pin_it = local.pins().find(1);
  ASSERT_NE(pin_it, local.pins().end());
  EXPECT_EQ(pin_it->second, (std::vector<NodeId>{0, 1}));
  // Separation 1<->2 survives (both local); 1<->3 is dropped (3 is not in
  // this cell, and cross-cell separation is satisfied by construction).
  EXPECT_FALSE(local.AllowsCollocation(1, 2));
  EXPECT_TRUE(local.AllowsCollocation(1, 3));
}

}  // namespace
}  // namespace mwp

// Edge cases of PlacementEvaluator::Compare around the tie tolerance
// (§3.2: sorted utility vectors whose elements all differ by less than the
// tolerance are tied, and then fewer placement changes wins), plus the
// bound-based early exit's agreement with Compare.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "core/evaluator.h"
#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

constexpr double kTol = 0.02;  // the default tie tolerance

PlacementEvaluation Eval(std::vector<Utility> sorted, std::size_t changes) {
  PlacementEvaluation e;
  e.sorted_utilities = std::move(sorted);
  e.changes.resize(changes);
  return e;
}

class CompareTest : public ::testing::Test {
 protected:
  CompareTest() : builder_(TinyCluster(1)) {
    builder_.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
    snap_ = std::make_unique<PlacementSnapshot>(builder_.Build());
    eval_ = std::make_unique<PlacementEvaluator>(snap_.get());
  }

  int Compare(const PlacementEvaluation& a, const PlacementEvaluation& b) {
    return eval_->Compare(a, b);
  }

  SnapshotBuilder builder_;
  std::unique_ptr<PlacementSnapshot> snap_;
  std::unique_ptr<PlacementEvaluator> eval_;
};

TEST_F(CompareTest, DifferenceBeyondToleranceWinsAtFirstIndex) {
  const auto a = Eval({0.5, 0.9}, 3);
  const auto b = Eval({0.5 - kTol - 1e-9, 1.5}, 0);
  // Index 0 decides; the huge loss at index 1 and the extra changes of `a`
  // never get a say.
  EXPECT_EQ(Compare(a, b), 1);
  EXPECT_EQ(Compare(b, a), -1);
}

TEST_F(CompareTest, DifferenceExactlyAtToleranceIsATie) {
  // diff == tolerance is NOT a win (the comparison is strict), so the
  // decision falls through to the change count. The pair 0.02 vs 0.0 makes
  // the difference exactly the tolerance's own double (0.52 - 0.5 would
  // not: it rounds a hair above 0.02).
  const auto a = Eval({kTol, 0.9}, 1);
  const auto b = Eval({0.0, 0.9}, 0);
  EXPECT_EQ(Compare(a, b), -1) << "tied on utilities, b has fewer changes";
  EXPECT_EQ(Compare(b, a), 1);
}

TEST_F(CompareTest, WithinToleranceFallsThroughToLaterIndices) {
  // Index 0 within tolerance either way; index 1 beyond it decides.
  const auto a = Eval({0.50, 0.80}, 5);
  const auto b = Eval({0.51, 0.80 - 2.0 * kTol}, 0);
  EXPECT_EQ(Compare(a, b), 1);
  EXPECT_EQ(Compare(b, a), -1);
}

TEST_F(CompareTest, AsymmetricNearToleranceDiffsDoNotCancel) {
  // a loses a little at index 0 and wins a little at index 1, both within
  // tolerance: the diffs must not accumulate into a decision.
  const auto a = Eval({0.50 - 0.019, 0.80 + 0.019}, 2);
  const auto b = Eval({0.50, 0.80}, 2);
  EXPECT_EQ(Compare(a, b), 0);
  EXPECT_EQ(Compare(b, a), 0);
}

TEST_F(CompareTest, AllTiedDecidedByChangeCount) {
  const auto a = Eval({0.5, 0.9}, 0);
  const auto b = Eval({0.5 + 0.9 * kTol, 0.9 - 0.9 * kTol}, 4);
  EXPECT_EQ(Compare(a, b), 1);
  EXPECT_EQ(Compare(b, a), -1);
  const auto c = Eval({0.5, 0.9}, 4);
  EXPECT_EQ(Compare(b, c), 0) << "same change count: a genuine tie";
}

TEST_F(CompareTest, UtilityFloorEntriesCompareLikeAnyOther) {
  const auto a = Eval({kUtilityFloor, 0.9}, 0);
  const auto b = Eval({kUtilityFloor, 0.9}, 0);
  EXPECT_EQ(Compare(a, b), 0);
  const auto c = Eval({kUtilityFloor + kTol + 1e-9, 0.9}, 9);
  EXPECT_EQ(Compare(c, a), 1) << "escaping the floor beats fewer changes";
}

TEST_F(CompareTest, RejectedEvaluationsCannotBeCompared) {
  auto a = Eval({0.5}, 0);
  const auto b = Eval({0.5}, 0);
  a.rejected_by_bound = true;
  EXPECT_THROW(static_cast<void>(Compare(a, b)), std::logic_error);
}

TEST_F(CompareTest, BoundRejectionAgreesWithCompare) {
  // Whenever Evaluate rejects a candidate against a bound, evaluating the
  // same candidate fully must lose to the bound under Compare — the early
  // exit is a shortcut for Compare's first branch, never a new decision.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    SnapshotBuilder b(TinyCluster(2));
    const int jobs = static_cast<int>(rng.UniformInt(1, 4));
    for (int j = 0; j < jobs; ++j) {
      b.AddJob(j + 1, rng.Uniform(1'000.0, 6'000.0),
               rng.Uniform(300.0, 1'000.0), 600.0, 0.0,
               rng.Uniform(2.0, 6.0));
    }
    const PlacementSnapshot snap = b.Build();
    const PlacementEvaluator eval(&snap);
    const PlacementEvaluation incumbent =
        eval.Evaluate(snap.current_placement());

    // Candidate: place the first job alone on node 0.
    PlacementMatrix cand(snap.num_entities(), snap.num_nodes());
    cand.at(0, 0) = 1;
    EvalScratch scratch;
    const PlacementEvaluation bounded = eval.Evaluate(cand, scratch, &incumbent);
    const PlacementEvaluation full = eval.Evaluate(cand, scratch, nullptr);
    if (bounded.rejected_by_bound) {
      EXPECT_EQ(eval.Compare(full, incumbent), -1) << "seed " << seed;
    } else {
      EXPECT_EQ(full.sorted_utilities, bounded.sorted_utilities)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mwp

#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

// §4.3 at cycle 2 (t = 1): J1 ran the first cycle at 1,000 MHz (1,000 Mc
// done), J2 just arrived. Two candidate placements: P1 = both running,
// P2 = J1 alone.
struct Cycle2Fixture {
  SnapshotBuilder b{TinyCluster(1)};

  Cycle2Fixture(double j2_factor) {
    b.now = 1.0;
    b.cycle = 1.0;
    b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0,
             /*done=*/1'000.0);
    b.AddJob(2, 2'000.0, 500.0, 750.0, 1.0, j2_factor);
  }

  PlacementMatrix P1() const {
    PlacementMatrix p(2, 1);
    p.at(0, 0) = 1;
    p.at(1, 0) = 1;
    return p;
  }
  PlacementMatrix P2() const {
    PlacementMatrix p(2, 1);
    p.at(0, 0) = 1;
    return p;
  }
};

TEST(PlacementEvaluatorTest, Scenario1PlacementsTieAtPoint7) {
  Cycle2Fixture f(/*j2_factor=*/4.0);
  const PlacementSnapshot snap = f.b.Build();
  PlacementEvaluator eval(&snap);
  const auto e1 = eval.Evaluate(f.P1());
  const auto e2 = eval.Evaluate(f.P2());
  // Figure 1 S1: both placements score ≈ (0.7, 0.7).
  EXPECT_NEAR(e1.sorted_utilities[0], 0.695, 0.02);
  EXPECT_NEAR(e1.sorted_utilities[1], 0.695, 0.02);
  EXPECT_NEAR(e2.sorted_utilities[0], 0.6875, 0.02);
  EXPECT_NEAR(e2.sorted_utilities[1], 0.70, 0.02);
  // Tied on utility; P2 wins by fewer changes (it is the incumbent).
  EXPECT_EQ(eval.Compare(e2, e1), 1);
  EXPECT_EQ(e2.changes.size(), 0u);
  EXPECT_EQ(e1.changes.size(), 1u);
}

TEST(PlacementEvaluatorTest, Scenario2PrefersEqualization) {
  Cycle2Fixture f(/*j2_factor=*/3.0);
  const PlacementSnapshot snap = f.b.Build();
  PlacementEvaluator eval(&snap);
  const auto e1 = eval.Evaluate(f.P1());
  const auto e2 = eval.Evaluate(f.P2());
  // Figure 1 S2: P1 ≈ (0.65, 0.65) beats P2 ≈ (0.6, 0.7).
  EXPECT_NEAR(e1.sorted_utilities[0], 0.655, 0.02);
  EXPECT_NEAR(e2.sorted_utilities[0], 0.583, 0.02);
  EXPECT_EQ(eval.Compare(e1, e2), 1);
}

TEST(PlacementEvaluatorTest, JobCompletingInsideCycleGetsExactUtility) {
  SnapshotBuilder b(TinyCluster(1));
  b.now = 0.0;
  b.cycle = 10.0;
  b.AddJob(1, 2'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  const PlacementSnapshot snap = b.Build();
  PlacementEvaluator eval(&snap);
  const auto e = eval.Evaluate(snap.current_placement());
  // Completes at 2 s at full speed; goal 10 s → u = 0.8.
  EXPECT_NEAR(e.entity_utilities[0], 0.8, 0.01);
}

TEST(PlacementEvaluatorTest, UnplacedJobScoredThroughHypothetical) {
  SnapshotBuilder b(TinyCluster(1));
  b.now = 0.0;
  b.cycle = 1.0;
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);  // queued
  const PlacementSnapshot snap = b.Build();
  PlacementEvaluator eval(&snap);
  PlacementMatrix empty(1, 1);
  const auto e = eval.Evaluate(empty);
  // If it starts at cycle end and runs at max: completes at 5 → u = 0.75;
  // with zero aggregate assumed, interpolation gives the floor row instead.
  EXPECT_LE(e.entity_utilities[0], 0.75 + 1e-9);
}

TEST(PlacementEvaluatorTest, BatchAllocationSumsJobTotals) {
  Cycle2Fixture f(4.0);
  const PlacementSnapshot snap = f.b.Build();
  PlacementEvaluator eval(&snap);
  const auto e = eval.Evaluate(f.P1());
  EXPECT_NEAR(e.batch_allocation,
              e.distribution.totals[0] + e.distribution.totals[1], 1e-9);
  EXPECT_NEAR(e.batch_allocation, 1'000.0, 5.0);
}

TEST(PlacementEvaluatorTest, ChangesClassifiedAgainstIncumbent) {
  SnapshotBuilder b(TinyCluster(2));
  b.now = 10.0;
  b.cycle = 1.0;
  b.AddJob(1, 40'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0,
           /*done=*/5'000.0);
  b.AddJob(2, 40'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kSuspended);
  b.AddJob(3, 40'000.0, 1'000.0, 750.0, 5.0, 5.0);  // never started
  const PlacementSnapshot snap = b.Build();
  PlacementEvaluator eval(&snap);

  PlacementMatrix p(3, 2);
  p.at(0, 1) = 1;  // migrate job 1 from node 0 to 1
  p.at(1, 0) = 1;  // resume job 2
  p.at(2, 0) = 1;  // start job 3
  const auto e = eval.Evaluate(p);
  ASSERT_EQ(e.changes.size(), 3u);
  int migrates = 0, resumes = 0, starts = 0;
  for (const auto& ch : e.changes) {
    if (ch.kind == PlacementChange::Kind::kMigrate) ++migrates;
    if (ch.kind == PlacementChange::Kind::kResume) ++resumes;
    if (ch.kind == PlacementChange::Kind::kStart) ++starts;
  }
  EXPECT_EQ(migrates, 1);
  EXPECT_EQ(resumes, 1);
  EXPECT_EQ(starts, 1);
}

TEST(PlacementEvaluatorTest, TxUtilityFromQueuingModel) {
  SnapshotBuilder b(TinyCluster(2));
  b.cycle = 1.0;
  TransactionalAppSpec spec;
  spec.id = 9;
  spec.name = "tx";
  spec.memory_per_instance = 200.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 1'500.0;
  b.AddTx(spec, /*rate=*/800.0, {0, 1});
  const PlacementSnapshot snap = b.Build();
  PlacementEvaluator eval(&snap);
  const auto e = eval.Evaluate(snap.current_placement());
  // Unchallenged: tx reaches its saturation allocation and max utility.
  EXPECT_NEAR(e.tx_allocation, 1'500.0, 5.0);
  EXPECT_NEAR(e.entity_utilities[0],
              snap.tx(0).app->ModelAt(800.0).max_utility(), 0.01);
}

TEST(PlacementEvaluatorTest, CompareIsLexicographic) {
  Cycle2Fixture f(4.0);
  const PlacementSnapshot snap = f.b.Build();
  PlacementEvaluator::Options opts;
  opts.tie_tolerance = 0.001;  // tight: the S1 tie now resolves
  PlacementEvaluator eval(&snap, opts);
  const auto e1 = eval.Evaluate(f.P1());
  const auto e2 = eval.Evaluate(f.P2());
  // With a tight tolerance P1's higher minimum (0.695 vs 0.6875) wins.
  EXPECT_EQ(eval.Compare(e1, e2), 1);
}

TEST(PlacementEvaluatorTest, FutureSpeedsExposedPerJob) {
  Cycle2Fixture f(4.0);
  const PlacementSnapshot snap = f.b.Build();
  PlacementEvaluator eval(&snap);
  const auto e = eval.Evaluate(f.P1());
  ASSERT_EQ(e.job_future_speeds.size(), 2u);
  // Figure 1's S1-P1 boxes: interpolated speeds ≈ (612, 387), summing to
  // the aggregate.
  EXPECT_NEAR(e.job_future_speeds[0] + e.job_future_speeds[1],
              e.batch_allocation, 5.0);
  EXPECT_GT(e.job_future_speeds[0], e.job_future_speeds[1]);
}

TEST(PlacementEvaluatorTest, MigrationOverheadWorsensCandidate) {
  // The same target placement scored as a migration (job currently on the
  // other node) vs as already-in-place: the migration's VM latency must
  // cost utility.
  auto make = [](NodeId current) {
    SnapshotBuilder b(TinyCluster(2));
    b.now = 0.0;
    b.cycle = 5.0;
    auto& j = b.AddJob(1, 5'000.0, 1'000.0, 750.0, 0.0, 1.6,
                       JobStatus::kRunning, current, /*done=*/1'000.0);
    j.migrate_overhead = 2.0;  // large relative to the 8 s goal
    return b;
  };
  auto b_stay = make(0);
  const PlacementSnapshot snap_stay = b_stay.Build();
  auto b_move = make(1);
  const PlacementSnapshot snap_move = b_move.Build();
  PlacementMatrix target(1, 2);
  target.at(0, 0) = 1;
  const auto stay = PlacementEvaluator(&snap_stay).Evaluate(target);
  const auto move = PlacementEvaluator(&snap_move).Evaluate(target);
  EXPECT_LT(move.entity_utilities[0], stay.entity_utilities[0]);
  ASSERT_EQ(move.changes.size(), 1u);
  EXPECT_EQ(move.changes[0].kind, PlacementChange::Kind::kMigrate);
}

TEST(PlacementEvaluatorTest, EmptySnapshotEvaluates) {
  SnapshotBuilder b(TinyCluster(2));
  const PlacementSnapshot snap = b.Build();
  PlacementEvaluator eval(&snap);
  const auto e = eval.Evaluate(snap.current_placement());
  EXPECT_TRUE(e.sorted_utilities.empty());
  EXPECT_DOUBLE_EQ(e.batch_allocation, 0.0);
  EXPECT_TRUE(e.changes.empty());
}

TEST(PlacementEvaluatorTest, SortedVectorIsSorted) {
  Cycle2Fixture f(3.0);
  const PlacementSnapshot snap = f.b.Build();
  PlacementEvaluator eval(&snap);
  const auto e = eval.Evaluate(f.P2());
  for (std::size_t i = 1; i < e.sorted_utilities.size(); ++i) {
    EXPECT_LE(e.sorted_utilities[i - 1], e.sorted_utilities[i]);
  }
}

TEST(PlacementEvaluatorTest, OverheadDelaysReflectedInPrediction) {
  SnapshotBuilder b(TinyCluster(1));
  b.now = 0.0;
  b.cycle = 1.0;
  auto& j = b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  j.place_overhead = 3.6;  // VM boot
  const PlacementSnapshot snap = b.Build();
  PlacementEvaluator eval(&snap);
  PlacementMatrix p(1, 1);
  p.at(0, 0) = 1;
  const auto with_boot = eval.Evaluate(p);

  SnapshotBuilder b2(TinyCluster(1));
  b2.now = 0.0;
  b2.cycle = 1.0;
  b2.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  const PlacementSnapshot snap2 = b2.Build();
  PlacementEvaluator eval2(&snap2);
  const auto without_boot = eval2.Evaluate(p);

  EXPECT_LT(with_boot.entity_utilities[0], without_boot.entity_utilities[0]);
}

}  // namespace
}  // namespace mwp

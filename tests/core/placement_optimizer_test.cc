#include "core/placement_optimizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

TEST(PlacementOptimizerTest, PlacesQueuedJobOnEmptyNode) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  EXPECT_EQ(result.placement.InstanceCount(0), 1);
  EXPECT_FALSE(result.used_shortcut);
}

TEST(PlacementOptimizerTest, ShortcutWhenNothingWanted) {
  // One running job, nothing queued — the paper's fast path.
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  EXPECT_TRUE(result.used_shortcut);
  EXPECT_EQ(result.evaluations, 1);
  EXPECT_EQ(result.placement, snap.current_placement());
}

TEST(PlacementOptimizerTest, Scenario1KeepsIncumbent) {
  // §4.3 S1 cycle 2: placing J2 does not beat the incumbent — "P2 is
  // selected, since it does not require any placement changes".
  SnapshotBuilder b(TinyCluster(1));
  b.now = 1.0;
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0,
           /*done=*/1'000.0);
  b.AddJob(2, 2'000.0, 500.0, 750.0, 1.0, 4.0);
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  EXPECT_EQ(result.placement.InstanceCount(1), 0) << "J2 must stay queued";
  EXPECT_NEAR(result.evaluation.distribution.totals[0], 1'000.0, 5.0);
}

TEST(PlacementOptimizerTest, Scenario2StartsSecondJob) {
  // §4.3 S2 cycle 2: with the tightened goal, P1 (both running at 500 MHz)
  // equalizes the relative distances and wins.
  SnapshotBuilder b(TinyCluster(1));
  b.now = 1.0;
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0,
           /*done=*/1'000.0);
  b.AddJob(2, 2'000.0, 500.0, 750.0, 1.0, 3.0);
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  EXPECT_EQ(result.placement.InstanceCount(1), 1) << "J2 must be placed";
  EXPECT_NEAR(result.evaluation.distribution.totals[0], 500.0, 25.0);
  EXPECT_NEAR(result.evaluation.distribution.totals[1], 500.0, 25.0);
}

TEST(PlacementOptimizerTest, FillsMultipleNodes) {
  // Per-job speed caps (500 of the node's 1,000 MHz) make each extra
  // placement raise the batch aggregate, as in the paper's experiments.
  SnapshotBuilder b(TinyCluster(3));
  for (int j = 0; j < 6; ++j) {
    b.AddJob(j + 1, 2'000.0, 500.0, 750.0, 0.0, 5.0);
  }
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  // Two 750 MB jobs fit per 2,000 MB node: all six run.
  int placed = 0;
  for (int e = 0; e < 6; ++e) placed += result.placement.InstanceCount(e);
  EXPECT_EQ(placed, 6);
  for (int n = 0; n < 3; ++n) {
    EXPECT_LE(result.placement.InstancesOnNode(n), 2);
  }
}

TEST(PlacementOptimizerTest, MemoryConstrainedQueueing) {
  SnapshotBuilder b(TinyCluster(1));
  for (int j = 0; j < 4; ++j) {
    b.AddJob(j + 1, 2'000.0, 500.0, 750.0, 0.0, 5.0);
  }
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  int placed = 0;
  for (int e = 0; e < 4; ++e) placed += result.placement.InstanceCount(e);
  EXPECT_EQ(placed, 2) << "only two 750 MB VMs fit in 2,000 MB";
  EXPECT_TRUE(snap.IsFeasible(result.placement));
}

TEST(PlacementOptimizerTest, LowestRpFirstAdmission) {
  // Two queued jobs, one slot: the job with the tighter goal (lower max
  // achievable RP) must win it.
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 1'500.0, 0.0, 8.0);  // relaxed goal
  b.AddJob(2, 4'000.0, 1'000.0, 1'500.0, 0.0, 1.5);  // tight goal
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  EXPECT_EQ(result.placement.InstanceCount(1), 1) << "tight-goal job runs";
  EXPECT_EQ(result.placement.InstanceCount(0), 0);
}

TEST(PlacementOptimizerTest, SuspendsRunningJobForUrgentArrival) {
  // A relaxed running job occupies the only slot; a newly submitted tight
  // job (goal factor 1.05) cannot wait for it.
  SnapshotBuilder b(TinyCluster(1));
  b.now = 0.0;
  b.AddJob(1, 400'000.0, 1'000.0, 1'500.0, 0.0, 20.0, JobStatus::kRunning, 0,
           /*done=*/1'000.0);
  b.AddJob(2, 40'000.0, 1'000.0, 1'500.0, 0.0, 1.05);
  b.cycle = 10.0;
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  EXPECT_EQ(result.placement.InstanceCount(1), 1) << "urgent job placed";
  EXPECT_EQ(result.placement.InstanceCount(0), 0) << "relaxed job suspended";
}

TEST(PlacementOptimizerTest, TxAppGetsInstancesWhenLoaded) {
  SnapshotBuilder b(TinyCluster(2));
  TransactionalAppSpec spec;
  spec.id = 5;
  spec.name = "tx";
  spec.memory_per_instance = 400.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 6.0;  // steep: one node leaves u ≈ 0.84 < 0.89
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 1'500.0;
  b.AddTx(spec, /*rate=*/150.0);  // no instances yet; stability at 900 MHz
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  // Saturation 1,500 MHz > one node's 1,000: expands to both nodes.
  EXPECT_EQ(result.placement.InstanceCount(0), 2);
  EXPECT_NEAR(result.evaluation.tx_allocation, 1'500.0, 10.0);
}

TEST(PlacementOptimizerTest, RespectsEvaluationBudget) {
  SnapshotBuilder b(TinyCluster(4));
  for (int j = 0; j < 12; ++j) {
    b.AddJob(j + 1, 4'000.0, 1'000.0, 750.0, 0.0, 2.0);
  }
  const PlacementSnapshot snap = b.Build();
  PlacementOptimizer::Options opts;
  opts.max_evaluations = 5;
  PlacementOptimizer opt(&snap, opts);
  const auto result = opt.Optimize();
  EXPECT_LE(result.evaluations, 5);
}

TEST(PlacementOptimizerTest, DeterministicAcrossRuns) {
  SnapshotBuilder b(TinyCluster(3));
  for (int j = 0; j < 5; ++j) {
    b.AddJob(j + 1, 2'000.0 * (j + 1), 500.0, 700.0, 0.0, 1.5 + 0.5 * j);
  }
  const PlacementSnapshot snap = b.Build();
  const auto r1 = PlacementOptimizer(&snap).Optimize();
  const auto r2 = PlacementOptimizer(&snap).Optimize();
  EXPECT_EQ(r1.placement, r2.placement);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
}

TEST(PlacementOptimizerTest, NeverWorseThanIncumbent) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    SnapshotBuilder b(TinyCluster(2));
    const int jobs = static_cast<int>(rng.UniformInt(1, 6));
    for (int j = 0; j < jobs; ++j) {
      const bool running = rng.Uniform01() < 0.5;
      b.AddJob(j + 1, rng.Uniform(1'000.0, 20'000.0),
               rng.Uniform(200.0, 900.0), rng.Uniform(300.0, 900.0), 0.0,
               rng.Uniform(1.2, 5.0),
               running ? JobStatus::kRunning : JobStatus::kNotStarted,
               running ? static_cast<NodeId>(rng.UniformInt(0, 1))
                       : kInvalidNode);
    }
    const PlacementSnapshot snap = b.Build();
    PlacementEvaluator evaluator(&snap);
    const auto incumbent = evaluator.Evaluate(snap.current_placement());
    const auto result = PlacementOptimizer(&snap).Optimize();
    EXPECT_GE(evaluator.Compare(result.evaluation, incumbent), 0)
        << "trial " << trial;
  }
}

TEST(PlacementOptimizerTest, TxBootstrapCrossesStabilityValley) {
  // A single new instance of this app sits below its stability boundary
  // (utility floor); only the whole-cluster expansion candidate can place
  // it. Regression test for the Experiment Three bootstrap.
  SnapshotBuilder b(TinyCluster(3));
  TransactionalAppSpec spec;
  spec.id = 9;
  spec.name = "tx";
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 2.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 2'500.0;
  b.AddTx(spec, /*rate=*/900.0);  // stability at 1,800 MHz > one node
  const PlacementSnapshot snap = b.Build();
  const auto result = PlacementOptimizer(&snap).Optimize();
  EXPECT_GE(result.placement.InstanceCount(0), 2)
      << "the app needs at least two nodes to clear its stability boundary";
  EXPECT_GT(result.evaluation.entity_utilities[0], 0.0);
}

TEST(PlacementOptimizerTest, FillsWholeBatchAcrossNodes) {
  // Eight queued jobs, two memory slots per node across four nodes: a
  // single cycle must start all of them (between the fill-all bootstrap
  // candidate and the per-node sweep).
  SnapshotBuilder b(TinyCluster(4));
  for (int j = 0; j < 8; ++j) {
    b.AddJob(j + 1, 60'000.0, 500.0, 900.0, 0.0, 2.0);
  }
  const PlacementSnapshot snap = b.Build();
  const auto result = PlacementOptimizer(&snap).Optimize();
  int placed = 0;
  for (int e = 0; e < 8; ++e) placed += result.placement.InstanceCount(e);
  EXPECT_EQ(placed, 8);
  for (int n = 0; n < 4; ++n) {
    EXPECT_LE(result.placement.InstancesOnNode(n), 2);
  }
}

TEST(PlacementOptimizerTest, ResultAlwaysFeasible) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    SnapshotBuilder b(TinyCluster(3));
    const int jobs = static_cast<int>(rng.UniformInt(1, 8));
    for (int j = 0; j < jobs; ++j) {
      b.AddJob(j + 1, rng.Uniform(1'000.0, 50'000.0),
               rng.Uniform(200.0, 1'000.0), rng.Uniform(300.0, 1'200.0), 0.0,
               rng.Uniform(1.1, 6.0));
    }
    const PlacementSnapshot snap = b.Build();
    PlacementOptimizer opt(&snap);
    const auto result = opt.Optimize();
    EXPECT_TRUE(snap.IsFeasible(result.placement)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mwp

// Pluggable fairness objectives: unit tests for the objective implementations
// plus the refactor-safety property tests.
//
// The load-bearing guarantee is that the default (max-min) objective is the
// *absence* of an objective: MakeFairnessObjective returns nullptr and the
// evaluator takes its pre-refactor code path verbatim. The property tests
// here pin the observable half of that claim — identical results across
// thread counts and across the sharded/monolithic engines with the objective
// machinery wired in, and an inert objective_score on the default path. The
// golden replay gate (replay.golden_tight.*, 1e-9) pins the cross-commit
// half.

#include "core/fairness_objective.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "batch/job_factory.h"
#include "common/rng.h"
#include "core/apc_controller.h"
#include "core/evaluator.h"
#include "core/placement_optimizer.h"
#include "core/sharded_optimizer.h"
#include "obs/trace_export.h"
#include "replay/replay.h"
#include "replay/trace_reader.h"
#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;

// ---------------------------------------------------------------------------
// Names, wire ids, factory.

TEST(FairnessObjectiveTest, NamesAndParseRoundTrip) {
  for (const FairnessObjectiveKind kind :
       {FairnessObjectiveKind::kMaxMin, FairnessObjectiveKind::kKarma,
        FairnessObjectiveKind::kProportionalFairness}) {
    const auto parsed = ParseFairnessObjective(FairnessObjectiveName(kind));
    ASSERT_TRUE(parsed.has_value()) << FairnessObjectiveName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  // Spelled-out aliases accepted by --objective=.
  EXPECT_EQ(ParseFairnessObjective("max-min"), FairnessObjectiveKind::kMaxMin);
  EXPECT_EQ(ParseFairnessObjective("proportional"),
            FairnessObjectiveKind::kProportionalFairness);
  EXPECT_FALSE(ParseFairnessObjective("fifo").has_value());
  EXPECT_FALSE(ParseFairnessObjective("").has_value());

  // Wire ids are frozen by schema-v2 traces.
  EXPECT_TRUE(ValidFairnessObjectiveId(0));
  EXPECT_TRUE(ValidFairnessObjectiveId(1));
  EXPECT_TRUE(ValidFairnessObjectiveId(2));
  EXPECT_FALSE(ValidFairnessObjectiveId(-1));
  EXPECT_FALSE(ValidFairnessObjectiveId(3));
}

TEST(FairnessObjectiveTest, FactoryReturnsNullForDefaultObjective) {
  SnapshotBuilder b(testing_fixtures::TinyCluster(1));
  const PlacementSnapshot snap = b.Build();
  FairnessObjectiveConfig config;
  // kMaxMin means "no objective object": the evaluator must not even
  // construct one, or the default path would stop being the original code.
  EXPECT_EQ(MakeFairnessObjective(config, snap), nullptr);

  config.kind = FairnessObjectiveKind::kKarma;
  auto karma = MakeFairnessObjective(config, snap);
  ASSERT_NE(karma, nullptr);
  EXPECT_EQ(karma->kind(), FairnessObjectiveKind::kKarma);

  config.kind = FairnessObjectiveKind::kProportionalFairness;
  auto pf = MakeFairnessObjective(config, snap);
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(pf->kind(), FairnessObjectiveKind::kProportionalFairness);
}

// ---------------------------------------------------------------------------
// Karma objective semantics.

// Two running jobs on two nodes => two entities.
PlacementSnapshot TwoEntitySnapshot(SnapshotBuilder& b) {
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  b.AddJob(2, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 1);
  return b.Build();
}

TEST(FairnessObjectiveTest, KarmaBiasScalesWithCredits) {
  SnapshotBuilder b(testing_fixtures::TinyCluster(2));
  PlacementSnapshot snap = TwoEntitySnapshot(b);
  FairnessObjectiveConfig config;
  config.kind = FairnessObjectiveKind::kKarma;
  config.karma_weight = 0.5;
  config.karma_cap = 8.0;

  // Entity 1 sits at the credit cap: it looks karma_weight worse than its
  // instantaneous utility. Entity 0 has no credits and no bias.
  snap.set_fairness_credits({0.0, 8.0});
  auto objective = MakeFairnessObjective(config, snap);
  ASSERT_NE(objective, nullptr);
  EXPECT_DOUBLE_EQ(objective->EntityBias(0), 0.0);
  EXPECT_DOUBLE_EQ(objective->EntityBias(1), -0.5);

  // Half the cap => half the bias; out-of-range ledger values clamp.
  snap.set_fairness_credits({4.0, 100.0});
  objective = MakeFairnessObjective(config, snap);
  EXPECT_DOUBLE_EQ(objective->EntityBias(0), -0.25);
  EXPECT_DOUBLE_EQ(objective->EntityBias(1), -0.5);

  // No credit vector on the snapshot => all biases zero.
  snap.set_fairness_credits({});
  objective = MakeFairnessObjective(config, snap);
  EXPECT_DOUBLE_EQ(objective->EntityBias(0), 0.0);
  EXPECT_DOUBLE_EQ(objective->EntityBias(1), 0.0);
}

TEST(FairnessObjectiveTest, KarmaScoreIsAscendingEffectiveUtilities) {
  SnapshotBuilder b(testing_fixtures::TinyCluster(2));
  PlacementSnapshot snap = TwoEntitySnapshot(b);
  snap.set_fairness_credits({0.0, 8.0});
  FairnessObjectiveConfig config;
  config.kind = FairnessObjectiveKind::kKarma;
  const auto objective = MakeFairnessObjective(config, snap);

  std::vector<double> score;
  objective->Score({0.5, 0.6}, score);
  // Effective utilities {0.5, 0.6 - 0.5} sorted ascending.
  ASSERT_EQ(score.size(), 2u);
  EXPECT_DOUBLE_EQ(score[0], 0.6 - 0.5);
  EXPECT_DOUBLE_EQ(score[1], 0.5);
}

TEST(FairnessObjectiveTest, KarmaRejectBoundMatchesScoreIndexZero) {
  // The reject bound is the objective analog of Compare's index-0 early
  // exit: a candidate is rejected exactly when its own score would lose at
  // index 0 by more than the tolerance — so the bound can never throw away
  // a candidate Compare would have accepted.
  SnapshotBuilder b(testing_fixtures::TinyCluster(2));
  PlacementSnapshot snap = TwoEntitySnapshot(b);
  FairnessObjectiveConfig config;
  config.kind = FairnessObjectiveKind::kKarma;
  constexpr double kTol = 0.02;

  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    snap.set_fairness_credits(
        {rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 8.0)});
    const auto objective = MakeFairnessObjective(config, snap);
    const std::vector<Utility> cand = {rng.Uniform(-2.0, 1.0),
                                       rng.Uniform(-2.0, 1.0)};
    std::vector<double> cand_score;
    objective->Score(cand, cand_score);
    std::vector<double> bound;
    objective->Score({rng.Uniform(-2.0, 1.0), rng.Uniform(-2.0, 1.0)}, bound);

    const bool rejected = objective->RejectedByBound(cand, bound, kTol);
    EXPECT_EQ(rejected, cand_score[0] - bound[0] < -kTol)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Proportional fairness semantics.

TEST(FairnessObjectiveTest, ProportionalFairnessScoreIsSumOfLogs) {
  SnapshotBuilder b(testing_fixtures::TinyCluster(1));
  const PlacementSnapshot snap = b.Build();
  FairnessObjectiveConfig config;
  config.kind = FairnessObjectiveKind::kProportionalFairness;
  config.pf_epsilon = 1e-6;
  const auto objective = MakeFairnessObjective(config, snap);

  std::vector<double> score;
  objective->Score({0.5, 0.8}, score);
  ASSERT_EQ(score.size(), 1u);
  const double expected = std::log(0.5 - kUtilityFloor + 1e-6) +
                          std::log(0.8 - kUtilityFloor + 1e-6);
  EXPECT_DOUBLE_EQ(score[0], expected);

  // Finite even for an entity sitting exactly on the utility floor.
  objective->Score({kUtilityFloor}, score);
  EXPECT_TRUE(std::isfinite(score[0]));

  // Raising any one utility raises the sum (strict monotonicity — the
  // property that makes PF favor helping anyone over helping no one).
  std::vector<double> lower, higher;
  objective->Score({0.5, 0.5}, lower);
  objective->Score({0.5, 0.6}, higher);
  EXPECT_GT(higher[0], lower[0]);
}

TEST(FairnessObjectiveTest, ProportionalFairnessBoundIsExact) {
  SnapshotBuilder b(testing_fixtures::TinyCluster(1));
  const PlacementSnapshot snap = b.Build();
  FairnessObjectiveConfig config;
  config.kind = FairnessObjectiveKind::kProportionalFairness;
  const auto objective = MakeFairnessObjective(config, snap);
  constexpr double kTol = 0.02;

  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const std::vector<Utility> cand = {rng.Uniform(-2.0, 1.0),
                                       rng.Uniform(-2.0, 1.0),
                                       rng.Uniform(-2.0, 1.0)};
    std::vector<double> cand_score, bound;
    objective->Score(cand, cand_score);
    objective->Score({rng.Uniform(-2.0, 1.0), rng.Uniform(-2.0, 1.0),
                      rng.Uniform(-2.0, 1.0)},
                     bound);
    EXPECT_EQ(objective->RejectedByBound(cand, bound, kTol),
              cand_score[0] - bound[0] < -kTol)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Refactor safety: the default objective is byte-identical across every
// engine configuration (ISSUE satellite — >= 200 random snapshots, 1/2/8
// search threads, and 1-cell sharding == monolithic).

/// Same generator shape as evaluator_equivalence_test.cc: a few nodes, jobs
/// in random states, up to two transactional apps, feasible placements.
SnapshotBuilder RandomSnapshot(Rng& rng) {
  const int nodes = static_cast<int>(rng.UniformInt(1, 4));
  SnapshotBuilder b(
      ClusterSpec::Uniform(nodes, NodeSpec{1, 1'000.0, 2'000.0}));
  b.now = rng.Uniform(0.0, 10.0);
  b.cycle = rng.Uniform(0.5, 2.0);
  std::vector<Megabytes> free_mem(static_cast<std::size_t>(nodes), 2'000.0);
  auto pick_node = [&](Megabytes need) -> NodeId {
    const int start = static_cast<int>(rng.UniformInt(0, nodes - 1));
    for (int k = 0; k < nodes; ++k) {
      const int n = (start + k) % nodes;
      if (free_mem[static_cast<std::size_t>(n)] >= need) return n;
    }
    return kInvalidNode;
  };

  const int num_jobs = static_cast<int>(rng.UniformInt(0, 7));
  for (int j = 0; j < num_jobs; ++j) {
    const Megacycles work = rng.Uniform(500.0, 8'000.0);
    const MHz max_speed = rng.Uniform(200.0, 1'000.0);
    const Megabytes memory = rng.Uniform(200.0, 900.0);
    const Seconds submit = rng.Uniform(0.0, b.now);
    const double factor = rng.Uniform(1.5, 6.0);
    JobStatus status = JobStatus::kNotStarted;
    NodeId node = kInvalidNode;
    Megacycles done = 0.0;
    const double roll = rng.Uniform01();
    if (roll < 0.4) {
      node = pick_node(memory);
      if (node != kInvalidNode) {
        status = JobStatus::kRunning;
        done = rng.Uniform(0.0, 0.8 * work);
        free_mem[static_cast<std::size_t>(node)] -= memory;
      }
    } else if (roll < 0.55) {
      status = JobStatus::kSuspended;
      done = rng.Uniform(0.0, 0.8 * work);
    }
    JobView& v = b.AddJob(j + 1, work, max_speed, memory, submit, factor,
                          status, node, done);
    if (status == JobStatus::kSuspended || status == JobStatus::kNotStarted) {
      v.place_overhead = rng.Uniform(0.0, 0.2);
    }
  }

  const int num_tx = static_cast<int>(rng.UniformInt(0, 2));
  for (int w = 0; w < num_tx; ++w) {
    TransactionalAppSpec spec;
    spec.id = 100 + w;
    spec.name = "tx";
    spec.memory_per_instance = rng.Uniform(300.0, 800.0);
    spec.response_time_goal = rng.Uniform(0.5, 2.0);
    spec.demand_per_request = rng.Uniform(5.0, 30.0);
    spec.min_response_time = 0.05;
    spec.saturation_allocation = rng.Uniform(400.0, 1'200.0);
    std::vector<NodeId> on;
    if (rng.Uniform01() < 0.7) {
      const NodeId n = pick_node(spec.memory_per_instance);
      if (n != kInvalidNode) {
        on.push_back(n);
        free_mem[static_cast<std::size_t>(n)] -= spec.memory_per_instance;
      }
    }
    b.AddTx(spec, rng.Uniform(1.0, 25.0), std::move(on));
  }
  return b;
}

void ExpectIdentical(const PlacementOptimizer::Result& got,
                     const PlacementOptimizer::Result& want,
                     std::uint64_t seed) {
  EXPECT_EQ(got.placement, want.placement) << "seed " << seed;
  EXPECT_EQ(got.evaluations, want.evaluations) << "seed " << seed;
  EXPECT_EQ(got.used_shortcut, want.used_shortcut) << "seed " << seed;
  EXPECT_EQ(got.evaluation.sorted_utilities, want.evaluation.sorted_utilities)
      << "seed " << seed;
  EXPECT_EQ(got.evaluation.entity_utilities, want.evaluation.entity_utilities)
      << "seed " << seed;
  EXPECT_EQ(got.evaluation.changes, want.evaluation.changes)
      << "seed " << seed;
  EXPECT_EQ(got.evaluation.distribution.totals,
            want.evaluation.distribution.totals)
      << "seed " << seed;
}

TEST(FairnessDefaultEquivalenceTest, ByteIdenticalAcrossEnginesAndThreads) {
  constexpr int kSnapshots = 220;
  for (std::uint64_t seed = 1; seed <= kSnapshots; ++seed) {
    Rng rng(seed);
    const SnapshotBuilder b = RandomSnapshot(rng);
    const PlacementSnapshot snap = b.Build();

    // Reference: sequential, non-incremental, default objective.
    PlacementOptimizer::Options reference_options;
    reference_options.evaluator.incremental = false;
    reference_options.search_threads = 1;
    const PlacementOptimizer reference(&snap, reference_options);
    const PlacementOptimizer::Result want = reference.Optimize();

    // The default path must leave the objective machinery inert: no
    // objective object, no objective score on the winning evaluation.
    EXPECT_TRUE(want.evaluation.objective_score.empty()) << "seed " << seed;
    const PlacementEvaluator default_evaluator(&snap);
    EXPECT_EQ(default_evaluator.objective(), nullptr) << "seed " << seed;

    for (const int threads : {1, 2, 8}) {
      PlacementOptimizer::Options options;
      options.search_threads = threads;
      options.evaluator.objective.kind = FairnessObjectiveKind::kMaxMin;
      const PlacementOptimizer optimizer(&snap, options);
      const PlacementOptimizer::Result got = optimizer.Optimize();
      ExpectIdentical(got, want, seed);
      EXPECT_TRUE(got.evaluation.objective_score.empty())
          << "seed " << seed << " threads " << threads;
    }

    // One-cell sharding still reduces to the monolithic solve with the
    // objective config threaded through the slice machinery.
    ShardedPlacementOptimizer::Options sharded_options;
    sharded_options.cell_size = 64;  // >= nodes => one cell
    sharded_options.cell.evaluator.objective.kind =
        FairnessObjectiveKind::kMaxMin;
    const ShardedPlacementOptimizer sharded(&snap, sharded_options);
    const ShardedPlacementOptimizer::Result sharded_result =
        sharded.Optimize();
    EXPECT_EQ(sharded_result.num_cells, 1) << "seed " << seed;
    EXPECT_EQ(sharded_result.global.placement, want.placement)
        << "seed " << seed;
    EXPECT_EQ(sharded_result.global.evaluation.sorted_utilities,
              want.evaluation.sorted_utilities)
        << "seed " << seed;
    EXPECT_EQ(sharded_result.global.evaluation.distribution.totals,
              want.evaluation.distribution.totals)
        << "seed " << seed;
    if (HasFailure()) break;
  }
}

TEST(FairnessDefaultEquivalenceTest, ZeroCreditKarmaDecidesLikeMaxMin) {
  // With an empty ledger every Karma bias is zero, so the effective
  // utilities equal the raw ones and the decisions must coincide with
  // max-min — the objective changes *when* tenants diverge, never the
  // baseline.
  for (std::uint64_t seed = 300; seed < 340; ++seed) {
    Rng rng(seed);
    const SnapshotBuilder b = RandomSnapshot(rng);
    const PlacementSnapshot snap = b.Build();

    const PlacementOptimizer maxmin(&snap);
    PlacementOptimizer::Options karma_options;
    karma_options.evaluator.objective.kind = FairnessObjectiveKind::kKarma;
    const PlacementOptimizer karma(&snap, karma_options);

    const PlacementOptimizer::Result want = maxmin.Optimize();
    const PlacementOptimizer::Result got = karma.Optimize();
    EXPECT_EQ(got.placement, want.placement) << "seed " << seed;
    EXPECT_EQ(got.evaluation.entity_utilities, want.evaluation.entity_utilities)
        << "seed " << seed;
    EXPECT_EQ(got.evaluation.changes, want.evaluation.changes)
        << "seed " << seed;
    if (HasFailure()) break;
  }
}

TEST(FairnessShardingTest, OneCellKarmaMatchesMonolithic) {
  // The slice maps the global credit vector into cell-local entity order;
  // with one cell that mapping is the identity, so sharded Karma must be
  // exactly the monolithic Karma solve.
  for (std::uint64_t seed = 500; seed < 540; ++seed) {
    Rng rng(seed);
    const SnapshotBuilder b = RandomSnapshot(rng);
    PlacementSnapshot snap = b.Build();
    std::vector<double> credits(
        static_cast<std::size_t>(snap.num_entities()));
    for (double& c : credits) c = rng.Uniform(0.0, 8.0);
    snap.set_fairness_credits(std::move(credits));

    PlacementOptimizer::Options cell_options;
    cell_options.evaluator.objective.kind = FairnessObjectiveKind::kKarma;
    cell_options.search_threads = 1;
    const PlacementOptimizer monolithic(&snap, cell_options);
    const PlacementOptimizer::Result want = monolithic.Optimize();

    ShardedPlacementOptimizer::Options sharded_options;
    sharded_options.cell_size = 64;
    sharded_options.cell = cell_options;
    const ShardedPlacementOptimizer sharded(&snap, sharded_options);
    const ShardedPlacementOptimizer::Result got = sharded.Optimize();
    EXPECT_EQ(got.num_cells, 1) << "seed " << seed;
    EXPECT_EQ(got.global.placement, want.placement) << "seed " << seed;
    EXPECT_EQ(got.global.evaluation.entity_utilities,
              want.evaluation.entity_utilities)
        << "seed " << seed;
    if (HasFailure()) break;
  }
}

// ---------------------------------------------------------------------------
// Karma changes decisions: optimizer-level flip and the controller ledger.

TEST(FairnessKarmaTest, CreditsFlipAContentionDecision) {
  // One node with memory for a single 1,100 MB VM, two identical queued
  // jobs. Max-min has no reason to prefer either and places job index 0
  // (stable order). Give entity 1 a full credit ledger: Karma must place
  // the shortchanged job instead — credits redeemed under contention.
  SnapshotBuilder b(testing_fixtures::TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 1'100.0, 0.0, 5.0);
  b.AddJob(2, 4'000.0, 1'000.0, 1'100.0, 0.0, 5.0);
  PlacementSnapshot snap = b.Build();

  const PlacementOptimizer maxmin(&snap);
  const PlacementOptimizer::Result maxmin_result = maxmin.Optimize();
  EXPECT_TRUE(maxmin_result.placement.IsPlaced(0));
  EXPECT_FALSE(maxmin_result.placement.IsPlaced(1));

  snap.set_fairness_credits({0.0, 8.0});
  PlacementOptimizer::Options karma_options;
  karma_options.evaluator.objective.kind = FairnessObjectiveKind::kKarma;
  const PlacementOptimizer karma(&snap, karma_options);
  const PlacementOptimizer::Result karma_result = karma.Optimize();
  EXPECT_FALSE(karma_result.placement.IsPlaced(0));
  EXPECT_TRUE(karma_result.placement.IsPlaced(1));
}

std::unique_ptr<Job> ContendingJob(AppId id, Megacycles work,
                                   double factor = 8.0) {
  JobProfile p = JobProfile::SingleStage(work, 1'000.0, 1'100.0);
  return std::make_unique<Job>(id, "job-" + std::to_string(id), p,
                               JobGoal::FromFactor(0.0, factor,
                                                   p.min_execution_time()));
}

ApcController::Config KarmaConfig(Seconds cycle = 1.0) {
  ApcController::Config cfg;
  cfg.control_cycle = cycle;
  cfg.costs = VmCostModel::Free();
  cfg.record_job_details = true;
  cfg.optimizer.evaluator.objective.kind = FairnessObjectiveKind::kKarma;
  return cfg;
}

TEST(FairnessKarmaTest, LedgerEarnsClampsAndPrunes) {
  // One node, two contending jobs: the placed job gets the whole node
  // (earning clamps at zero), the waiting job earns one credit per cycle up
  // to the cap. Completed jobs leave the ledger.
  const ClusterSpec cluster = testing_fixtures::TinyCluster(1);
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, KarmaConfig());

  queue.Submit(ContendingJob(1, 30'000.0));
  queue.Submit(ContendingJob(2, 30'000.0));
  controller.Attach(sim, 0.0);

  sim.RunUntil(4.0);
  {
    const auto& ledger = controller.karma_credits();
    ASSERT_EQ(ledger.size(), 2u);
    double max_credit = 0.0;
    for (const auto& [id, credits] : ledger) {
      EXPECT_GE(credits, 0.0) << "app " << id;
      EXPECT_LE(credits, 8.0) << "app " << id;
      max_credit = std::max(max_credit, credits);
    }
    // Somebody has been waiting under contention and earned for it.
    EXPECT_GT(max_credit, 0.5);
  }

  // Run the workload to completion: the ledger prunes entities that left
  // the system, and never exceeds the cap along the way.
  sim.RunUntil(90.0);
  controller.AdvanceJobsTo(sim.now());
  EXPECT_EQ(queue.num_completed(), 2u);
  EXPECT_TRUE(controller.karma_credits().empty());
}

/// Per-cycle decision signature (requires record_job_details): which jobs
/// are placed each cycle — any diverging placement decision shows up here.
std::vector<std::string> DecisionSignature(const ApcController& controller) {
  std::vector<std::string> out;
  out.reserve(controller.cycles().size());
  for (const CycleStats& c : controller.cycles()) {
    std::ostringstream os;
    for (const JobCycleDetail& d : c.job_details) {
      if (d.placed) os << d.id << ',';
    }
    out.push_back(os.str());
  }
  return out;
}

TEST(FairnessKarmaTest, LongHorizonKarmaDivergesFromMaxMinUnderContention) {
  // ISSUE acceptance criterion: over a long-horizon contended run, Karma
  // credits change at least one placement decision vs. max-min. One node,
  // six staggered jobs with heterogeneous goal factors: tight-goal jobs
  // look needy on raw relative performance, but long-waiting loose-goal
  // jobs carry more credits — where the bias gap exceeds the tie tolerance,
  // Karma refills freed capacity in a different order. The two runs differ
  // only in the configured objective; everything is deterministic.
  const ClusterSpec cluster = testing_fixtures::TinyCluster(1);
  struct Arrival {
    AppId id;
    Seconds submit;
    Megacycles work;
    double factor;
  };
  const std::vector<Arrival> arrivals = {
      {1, 0.0, 10'500.0, 3.0},  {2, 0.0, 10'000.0, 10.0},
      {3, 5.0, 10'000.0, 6.0},  {4, 12.0, 8'000.0, 4.0},
      {5, 18.0, 12'000.0, 8.0}, {6, 25.0, 6'000.0, 5.0},
  };

  auto run = [&](ApcController::Config cfg, std::vector<std::string>* sig,
                 double* peak_credit) {
    JobQueue queue;
    Simulation sim;
    ApcController controller(&cluster, &queue, cfg);
    for (const Arrival& a : arrivals) {
      sim.ScheduleAt(a.submit, [&queue, &controller, a](Simulation& s) {
        JobProfile p = JobProfile::SingleStage(a.work, 1'000.0, 1'100.0);
        queue.Submit(std::make_unique<Job>(
            a.id, "job-" + std::to_string(a.id), p,
            JobGoal::FromFactor(s.now(), a.factor, p.min_execution_time())));
        controller.OnJobSubmitted(s);
      });
    }
    controller.Attach(sim, 0.0);
    for (int step = 1; step <= 150; ++step) {
      sim.RunUntil(static_cast<Seconds>(step));
      if (peak_credit != nullptr) {
        for (const auto& [id, credits] : controller.karma_credits()) {
          *peak_credit = std::max(*peak_credit, credits);
        }
      }
    }
    controller.AdvanceJobsTo(sim.now());
    EXPECT_EQ(queue.num_completed(), 6u);
    *sig = DecisionSignature(controller);
  };

  ApcController::Config maxmin_cfg = KarmaConfig();
  maxmin_cfg.optimizer.evaluator.objective.kind =
      FairnessObjectiveKind::kMaxMin;
  std::vector<std::string> maxmin_sig;
  run(maxmin_cfg, &maxmin_sig, nullptr);

  std::vector<std::string> karma_sig;
  double peak_credit = 0.0;
  run(KarmaConfig(), &karma_sig, &peak_credit);

  // The ledger actually accumulated under contention...
  EXPECT_GT(peak_credit, 1.0);
  // ... and redeemed into at least one different placement decision.
  EXPECT_NE(karma_sig, maxmin_sig);
}

// ---------------------------------------------------------------------------
// Record -> replay: credit trajectories ride the schema-v2 trace.

TEST(FairnessReplayTest, KarmaTraceReplaysBitExact) {
  const ClusterSpec cluster = testing_fixtures::TinyCluster(1);
  JobQueue queue;
  Simulation sim;
  obs::TraceRecorder recorder;
  ApcController::Config cfg = KarmaConfig();
  cfg.trace = &recorder;
  cfg.trace_full = true;
  cfg.trace_run_id = "karma-selftest";
  ApcController controller(&cluster, &queue, cfg);

  queue.Submit(ContendingJob(1, 8'000.0));
  queue.Submit(ContendingJob(2, 8'000.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(20.0);
  controller.AdvanceJobsTo(sim.now());

  std::ostringstream os;
  obs::WriteTraceJsonl(os,
                       obs::MakeTraceContext("fairness", 0, cfg.control_cycle,
                                             "karma-selftest"),
                       recorder.Traces());
  std::string error;
  const auto parsed = replay::ParseTraceJsonl(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  // The objective id and the per-cycle credit vector made the round trip.
  bool saw_credits = false;
  for (const obs::CycleTrace& trace : parsed->cycles) {
    if (!trace.input.has_value()) continue;
    EXPECT_EQ(trace.input->options.objective, 1);
    if (!trace.input->fairness_credits.empty()) saw_credits = true;
  }
  EXPECT_TRUE(saw_credits);

  // Replaying reconstructs the Karma evaluator from the recorded credits,
  // so every cycle reproduces the recorded decision exactly.
  const replay::ReplayOptions options;
  const replay::ReplayReport report = replay::ReplayTrace(*parsed, options);
  EXPECT_GT(report.replayed_cycles, 0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cycles_with_placement_diff, 0);
  EXPECT_EQ(report.max_rp_drift, 0.0);
}

TEST(FairnessReplayTest, UnknownObjectiveIdIsShapeMismatchNotCrash) {
  // Build a minimal valid trace, then corrupt the objective id: the replay
  // harness must flag a shape regression and keep going, never crash.
  const ClusterSpec cluster = testing_fixtures::TinyCluster(1);
  JobQueue queue;
  Simulation sim;
  obs::TraceRecorder recorder;
  ApcController::Config cfg = KarmaConfig();
  cfg.trace = &recorder;
  cfg.trace_full = true;
  ApcController controller(&cluster, &queue, cfg);
  queue.Submit(ContendingJob(1, 2'000.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(4.0);

  std::ostringstream os;
  obs::WriteTraceJsonl(os, obs::MakeTraceContext("fairness", 0, 1.0, "bad"),
                       recorder.Traces());
  std::string error;
  auto parsed = replay::ParseTraceJsonl(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_FALSE(parsed->cycles.empty());
  int corrupted = 0;
  for (obs::CycleTrace& trace : parsed->cycles) {
    if (trace.input.has_value()) {
      trace.input->options.objective = 7;  // not a wire id
      ++corrupted;
    }
  }
  ASSERT_GT(corrupted, 0);

  const replay::ReplayReport report =
      replay::ReplayTrace(*parsed, replay::ReplayOptions{});
  EXPECT_FALSE(report.ok());
  int mismatches = 0;
  for (const replay::CycleReplayDiff& diff : report.cycles) {
    if (diff.shape_mismatch) ++mismatches;
  }
  EXPECT_EQ(mismatches, corrupted);
}

}  // namespace
}  // namespace mwp

#include "core/double_buffer.h"

#include <gtest/gtest.h>

#include <string>

namespace mwp {
namespace {

TEST(DoubleBufferTest, EmptyBufferHasNothingToAcquire) {
  DoubleBuffer<int> buffer;
  EXPECT_FALSE(buffer.has_latest());
  EXPECT_EQ(buffer.Acquire(), nullptr);
}

TEST(DoubleBufferTest, PublishThenAcquireRoundTrips) {
  DoubleBuffer<std::string> buffer;
  buffer.Publish("capture-1");
  EXPECT_TRUE(buffer.has_latest());

  const std::string* got = buffer.Acquire();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "capture-1");
  EXPECT_FALSE(buffer.has_latest());  // borrowed, not latest anymore
  buffer.Release();
}

TEST(DoubleBufferTest, UnreadPublicationIsReplacedLatestWins) {
  DoubleBuffer<int> buffer;
  buffer.Publish(1);
  buffer.Publish(2);
  buffer.Publish(3);

  const int* got = buffer.Acquire();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 3);
  buffer.Release();
  EXPECT_EQ(buffer.Acquire(), nullptr);  // stale captures are gone
}

TEST(DoubleBufferTest, WriterNeverBlocksOnReaderHoldingASlot) {
  // The solver holds capture A for the whole solve; meanwhile the service
  // stages B and C. The reader's slot must stay intact and the next
  // acquire must see the freshest publication.
  DoubleBuffer<int> buffer;
  buffer.Publish(10);
  const int* held = buffer.Acquire();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, 10);

  buffer.Publish(20);
  buffer.Publish(30);
  EXPECT_EQ(*held, 10);  // the borrowed slot is never recycled
  buffer.Release();

  const int* next = buffer.Acquire();
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(*next, 30);
  buffer.Release();
}

TEST(DoubleBufferTest, ReusableAcrossManyCycles) {
  DoubleBuffer<int> buffer;
  for (int i = 0; i < 1'000; ++i) {
    buffer.Publish(i);
    const int* got = buffer.Acquire();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, i);
    buffer.Release();
  }
}

}  // namespace
}  // namespace mwp

#include "core/annealing_optimizer.h"

#include <gtest/gtest.h>

#include "core/placement_optimizer.h"
#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

AnnealingPlacementOptimizer::Options FastOptions(
    AnnealingPlacementOptimizer::Objective objective) {
  AnnealingPlacementOptimizer::Options opts;
  opts.objective = objective;
  opts.iterations = 1'500;
  opts.seed = 3;
  return opts;
}

TEST(AnnealingOptimizerTest, PlacesTheOnlyJob) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 2'000.0, 500.0, 500.0, 0.0, 5.0);
  const PlacementSnapshot snap = b.Build();
  AnnealingPlacementOptimizer opt(
      &snap, FastOptions(AnnealingPlacementOptimizer::Objective::kSumUtility));
  const auto result = opt.Optimize();
  EXPECT_EQ(result.placement.InstanceCount(0), 1);
  EXPECT_GT(result.score, 0.0);
  EXPECT_GT(result.accepted_moves, 0);
}

TEST(AnnealingOptimizerTest, ResultIsAlwaysFeasible) {
  Rng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    SnapshotBuilder b(TinyCluster(2));
    const int jobs = static_cast<int>(rng.UniformInt(2, 6));
    for (int j = 0; j < jobs; ++j) {
      b.AddJob(j + 1, rng.Uniform(500.0, 10'000.0), rng.Uniform(200.0, 900.0),
               rng.Uniform(400.0, 1'100.0), 0.0, rng.Uniform(1.2, 5.0));
    }
    const PlacementSnapshot snap = b.Build();
    AnnealingPlacementOptimizer opt(
        &snap,
        FastOptions(AnnealingPlacementOptimizer::Objective::kSumUtility));
    const auto result = opt.Optimize();
    EXPECT_TRUE(snap.IsFeasible(result.placement)) << "trial " << trial;
  }
}

TEST(AnnealingOptimizerTest, ScoreNeverBelowIncumbent) {
  SnapshotBuilder b(TinyCluster(2));
  for (int j = 0; j < 4; ++j) {
    b.AddJob(j + 1, 2'000.0, 500.0, 800.0, 0.0, 3.0);
  }
  const PlacementSnapshot snap = b.Build();
  AnnealingPlacementOptimizer opt(
      &snap, FastOptions(AnnealingPlacementOptimizer::Objective::kMinUtility));
  PlacementEvaluator evaluator(&snap);
  const double incumbent =
      evaluator.Evaluate(snap.current_placement()).sorted_utilities.front();
  const auto result = opt.Optimize();
  EXPECT_GE(result.score, incumbent);
}

TEST(AnnealingOptimizerTest, SumObjectiveCanStarveTheNeedy) {
  // The paper's fairness argument (§2): maximizing total utility can starve
  // the worst-off application. One slot (memory admits one job); an easy
  // job (huge slack) and a needy one (tight goal). Sum-maximization is
  // indifferent-to-hostile toward the needy job, while the APC's max-min
  // objective places it.
  auto build = [] {
    SnapshotBuilder b(TinyCluster(1));
    b.AddJob(1, 2'000.0, 1'000.0, 1'500.0, 0.0, 20.0);  // relaxed
    b.AddJob(2, 2'000.0, 1'000.0, 1'500.0, 0.0, 2.2);   // tight
    return b;
  };
  auto b1 = build();
  const PlacementSnapshot snap1 = b1.Build();
  PlacementOptimizer apc(&snap1);
  const auto apc_result = apc.Optimize();
  EXPECT_EQ(apc_result.placement.InstanceCount(1), 1)
      << "max-min places the needy job";

  // Annealing on the sum objective: compare the two single-job placements
  // directly — the sum score of placing the relaxed job is at least as high
  // (the relaxed job's queued utility decays far slower), so fairness is
  // not implied by the objective.
  auto b2 = build();
  const PlacementSnapshot snap2 = b2.Build();
  PlacementEvaluator evaluator(&snap2);
  PlacementMatrix place_relaxed(2, 1);
  place_relaxed.at(0, 0) = 1;
  PlacementMatrix place_needy(2, 1);
  place_needy.at(1, 0) = 1;
  auto sum = [&](const PlacementEvaluation& e) {
    double s = 0.0;
    for (Utility u : e.entity_utilities) s += u;
    return s;
  };
  const double sum_relaxed = sum(evaluator.Evaluate(place_relaxed));
  const double sum_needy = sum(evaluator.Evaluate(place_needy));
  const auto eval_relaxed = evaluator.Evaluate(place_relaxed);
  const auto eval_needy = evaluator.Evaluate(place_needy);
  // Max-min prefers placing the needy job...
  EXPECT_GT(eval_needy.sorted_utilities.front(),
            eval_relaxed.sorted_utilities.front());
  // ...while the sum objective sees them as comparable (within the decay of
  // one cycle), so it provides no starvation protection.
  EXPECT_NEAR(sum_relaxed, sum_needy, 0.5);
}

TEST(AnnealingOptimizerTest, DeterministicGivenSeed) {
  SnapshotBuilder b(TinyCluster(2));
  for (int j = 0; j < 3; ++j) {
    b.AddJob(j + 1, 2'000.0, 500.0, 800.0, 0.0, 3.0);
  }
  const PlacementSnapshot snap = b.Build();
  const auto opts =
      FastOptions(AnnealingPlacementOptimizer::Objective::kSumUtility);
  AnnealingPlacementOptimizer a(&snap, opts), b2(&snap, opts);
  const auto ra = a.Optimize();
  const auto rb = b2.Optimize();
  EXPECT_EQ(ra.placement, rb.placement);
  EXPECT_DOUBLE_EQ(ra.score, rb.score);
}

TEST(AnnealingOptimizerTest, HonoursConstraints) {
  SnapshotBuilder b(TinyCluster(2));
  b.AddJob(1, 2'000.0, 500.0, 500.0, 0.0, 3.0);
  PlacementSnapshot snap = b.Build();
  PlacementConstraints c;
  c.PinTo(1, {1});
  snap.set_constraints(c);
  AnnealingPlacementOptimizer opt(
      &snap, FastOptions(AnnealingPlacementOptimizer::Objective::kSumUtility));
  const auto result = opt.Optimize();
  EXPECT_EQ(result.placement.at(0, 0), 0);
}

}  // namespace
}  // namespace mwp

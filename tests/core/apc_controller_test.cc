#include "core/apc_controller.h"

#include <gtest/gtest.h>

#include "batch/job_factory.h"
#include "web/workload_generator.h"

namespace mwp {
namespace {

ClusterSpec SmallCluster(int nodes = 1) {
  return ClusterSpec::Uniform(nodes, NodeSpec{1, 1'000.0, 2'000.0});
}

std::unique_ptr<Job> MakeJob(AppId id, Seconds submit, Megacycles work,
                             MHz speed, double factor,
                             Megabytes mem = 750.0) {
  JobProfile p = JobProfile::SingleStage(work, speed, mem);
  return std::make_unique<Job>(id, "job-" + std::to_string(id), p,
                               JobGoal::FromFactor(submit, factor,
                                                   p.min_execution_time()));
}

TEST(ApcControllerTest, RunsSingleJobToCompletion) {
  const ClusterSpec cluster = SmallCluster();
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  queue.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(10.0);
  controller.AdvanceJobsTo(sim.now());

  ASSERT_EQ(queue.num_completed(), 1u);
  const Job* job = queue.Find(1);
  EXPECT_NEAR(*job->completion_time(), 4.0, 1e-6);
  EXPECT_NEAR(job->achieved_utility(), 0.8, 1e-6);
}

TEST(ApcControllerTest, BootCostDelaysCompletion) {
  const ClusterSpec cluster = SmallCluster();
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::PaperMeasured();  // 3.6 s boot
  ApcController controller(&cluster, &queue, cfg);

  queue.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(20.0);
  controller.AdvanceJobsTo(sim.now());

  ASSERT_EQ(queue.num_completed(), 1u);
  EXPECT_NEAR(*queue.Find(1)->completion_time(), 7.6, 1e-6);
}

TEST(ApcControllerTest, CycleStatsRecorded) {
  const ClusterSpec cluster = SmallCluster();
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  queue.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(3.0);

  ASSERT_GE(controller.cycles().size(), 3u);
  const CycleStats& first = controller.cycles().front();
  EXPECT_DOUBLE_EQ(first.time, 0.0);
  EXPECT_EQ(first.num_jobs, 1);
  EXPECT_EQ(first.starts, 1);
  EXPECT_NEAR(first.batch_allocation, 1'000.0, 5.0);
  EXPECT_GT(first.avg_job_rp, 0.7);
}

TEST(ApcControllerTest, JobDetailsWhenEnabled) {
  const ClusterSpec cluster = SmallCluster();
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  cfg.record_job_details = true;
  ApcController controller(&cluster, &queue, cfg);

  queue.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(2.0);

  const auto& cycles = controller.cycles();
  ASSERT_GE(cycles.size(), 2u);
  ASSERT_EQ(cycles[0].job_details.size(), 1u);
  const JobCycleDetail& d0 = cycles[0].job_details[0];
  EXPECT_EQ(d0.id, 1);
  EXPECT_DOUBLE_EQ(d0.work_done, 0.0);
  EXPECT_DOUBLE_EQ(d0.outstanding, 4'000.0);
  EXPECT_TRUE(d0.placed);
  EXPECT_NEAR(d0.allocation, 1'000.0, 5.0);
  // Next cycle reflects one second of progress.
  EXPECT_NEAR(cycles[1].job_details[0].work_done, 1'000.0, 5.0);
}

TEST(ApcControllerTest, MemoryPressureQueuesThirdJob) {
  const ClusterSpec cluster = SmallCluster();  // 2,000 MB: two 750 MB VMs
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  queue.Submit(MakeJob(1, 0.0, 2'000.0, 500.0, 6.0));
  queue.Submit(MakeJob(2, 0.0, 2'000.0, 500.0, 6.0));
  queue.Submit(MakeJob(3, 0.0, 2'000.0, 500.0, 6.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(1.0);

  const CycleStats& first = controller.cycles().front();
  EXPECT_EQ(first.running_jobs, 2);
  EXPECT_EQ(first.queued_jobs, 1);
  // Eventually all three complete.
  sim.RunUntil(30.0);
  controller.AdvanceJobsTo(sim.now());
  EXPECT_EQ(queue.num_completed(), 3u);
}

TEST(ApcControllerTest, TransactionalAppReceivesAllocation) {
  const ClusterSpec cluster = SmallCluster(2);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "tx";
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 6.0;  // steep curve: one node is clearly short
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 1'500.0;
  controller.AddTransactionalApp(spec, std::make_shared<ConstantRate>(150.0));

  controller.Attach(sim, 0.0);
  sim.RunUntil(3.0);

  const CycleStats& last = controller.cycles().back();
  ASSERT_EQ(last.tx_allocations.size(), 1u);
  EXPECT_NEAR(last.tx_allocations[0], 1'500.0, 10.0);
  EXPECT_GT(last.tx_utilities[0], 0.8);
  EXPECT_GT(last.tx_response_times[0], 0.0);
}

TEST(ApcControllerTest, EqualizesTxAndBatchUnderContention) {
  // One node; a loaded tx app and a batch job must share 1,000 MHz with
  // comparable relative performance (the Experiment Three behaviour).
  const ClusterSpec cluster = SmallCluster(1);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "tx";
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 900.0;
  controller.AddTransactionalApp(spec, std::make_shared<ConstantRate>(400.0));
  queue.Submit(MakeJob(7, 0.0, 20'000.0, 1'000.0, 2.0));

  controller.Attach(sim, 0.0);
  sim.RunUntil(5.0);

  const CycleStats& c = controller.cycles().back();
  ASSERT_EQ(c.tx_allocations.size(), 1u);
  EXPECT_GT(c.tx_allocations[0], 0.0);
  EXPECT_GT(c.batch_allocation, 0.0);
  EXPECT_NEAR(c.tx_allocations[0] + c.batch_allocation, 1'000.0, 10.0);
  EXPECT_NEAR(c.tx_utilities[0], c.avg_job_rp, 0.15);
}

TEST(ApcControllerTest, SuspendedJobEventuallyResumes) {
  const ClusterSpec cluster = SmallCluster(1);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  // Long relaxed job first; short tight job arrives at t = 2 and must push
  // the long one out (memory admits only one 1,500 MB VM).
  queue.Submit(MakeJob(1, 0.0, 100'000.0, 1'000.0, 10.0, 1'500.0));
  sim.ScheduleAt(2.0, [&queue](Simulation& s) {
    queue.Submit(MakeJob(2, s.now(), 3'000.0, 1'000.0, 1.2, 1'500.0));
  });
  controller.Attach(sim, 0.0);
  sim.RunUntil(200.0);
  controller.AdvanceJobsTo(sim.now());

  EXPECT_EQ(queue.num_completed(), 2u);
  int suspends = 0, resumes = 0;
  for (const CycleStats& c : controller.cycles()) {
    suspends += c.suspends;
    resumes += c.resumes;
  }
  EXPECT_GE(suspends, 1);
  EXPECT_GE(resumes, 1);
  EXPECT_EQ(controller.total_placement_changes(),
            controller.total_placement_changes());
}

TEST(ApcControllerTest, ClusterUtilizationRecorded) {
  const ClusterSpec cluster = SmallCluster(2);  // 2,000 MHz total
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);
  queue.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(2.0);
  const CycleStats& c = controller.cycles().front();
  // One 1,000 MHz job on a 2,000 MHz cluster.
  EXPECT_NEAR(c.cluster_utilization, 0.5, 0.01);
}

TEST(ApcControllerTest, RouterAdmissionRecorded) {
  const ClusterSpec cluster = SmallCluster(1);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);
  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "tx";
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 0.8;
  spec.min_response_time = 0.1;
  // Saturation 820 MHz sits between the stability boundary (800) and the
  // router's headroom point (λ·c / 0.95 ≈ 842): the app is placeable and
  // stable, yet the router must shed part of the 1,000 req/s flow.
  spec.saturation_allocation = 820.0;
  controller.AddTransactionalApp(spec, std::make_shared<ConstantRate>(1'000.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(2.0);
  const CycleStats& c = controller.cycles().back();
  ASSERT_EQ(c.tx_admitted_rates.size(), 1u);
  EXPECT_GT(c.tx_admitted_rates[0], 900.0);
  EXPECT_GT(c.tx_rejected_rates[0], 10.0);
  EXPECT_NEAR(c.tx_admitted_rates[0] + c.tx_rejected_rates[0], 1'000.0, 1e-6);
}

TEST(ApcControllerTest, WorkProfilerLoopConvergesToTruth) {
  const ClusterSpec cluster = SmallCluster(2);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  cfg.use_work_profiler = true;
  ApcController controller(&cluster, &queue, cfg);
  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "tx";
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 3.0;  // ground truth, hidden from placement
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 1'200.0;
  controller.AddTransactionalApp(spec, std::make_shared<ConstantRate>(200.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(10.0);
  const CycleStats& c = controller.cycles().back();
  // With the estimate converged, the allocation and utility match what the
  // true model yields: saturation (uncontended).
  EXPECT_NEAR(c.tx_allocations[0], 1'200.0, 15.0);
  TransactionalApp truth(spec);
  EXPECT_NEAR(c.tx_utilities[0], truth.UtilityAt(200.0, 1'200.0), 0.02);
}

TEST(ApcControllerTest, QuiescedTxAppYieldsEverything) {
  const ClusterSpec cluster = SmallCluster(1);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "tx";
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 900.0;
  controller.AddTransactionalApp(spec, std::make_shared<ConstantRate>(0.0));
  queue.Submit(MakeJob(3, 0.0, 4'000.0, 1'000.0, 5.0));

  controller.Attach(sim, 0.0);
  sim.RunUntil(3.0);
  const CycleStats& c = controller.cycles().back();
  EXPECT_DOUBLE_EQ(c.tx_allocations[0], 0.0);
  EXPECT_NEAR(c.batch_allocation, 1'000.0, 5.0);
  EXPECT_DOUBLE_EQ(c.tx_utilities[0], 1.0);
}


// ---------------------------------------------------------------------------
// Out-of-band repair cycles (OnNodeFault) and VM operation failures.
// ---------------------------------------------------------------------------

TEST(ApcControllerRepairTest, RepairRequeuesCrashedJobAndRedispatchesIt) {
  ClusterSpec cluster = SmallCluster(3);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 10.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  Job& j1 = queue.Submit(MakeJob(1, 0.0, 20'000.0, 1'000.0, 2.0));
  Job& j2 = queue.Submit(MakeJob(2, 0.0, 20'000.0, 1'000.0, 2.0));
  j1.set_checkpoint_interval(2.0);
  j2.set_checkpoint_interval(2.0);

  controller.Attach(sim, 0.0);
  NodeId dead = kInvalidNode;
  sim.ScheduleAt(5.0, [&](Simulation& s) {
    ASSERT_TRUE(j1.placed());
    ASSERT_TRUE(j2.placed());
    ASSERT_NE(j1.node(), j2.node());  // 3 nodes, 2 jobs: spread out
    dead = j1.node();
    cluster.SetNodeOffline(dead);
    controller.OnNodeFault(s);
  });
  sim.RunUntil(6.0);

  ASSERT_EQ(controller.repairs().size(), 1u);
  const RepairStats& repair = controller.repairs()[0];
  EXPECT_DOUBLE_EQ(repair.time, 5.0);
  EXPECT_EQ(repair.jobs_requeued, 1);
  EXPECT_EQ(repair.tx_displaced, 0);
  EXPECT_EQ(repair.job_placements, 1);

  // The job was rolled back to its t=4 checkpoint (1,000 MHz x 4 s) and
  // immediately restarted on a surviving node by the repair dispatch.
  EXPECT_EQ(j1.crash_count(), 1);
  EXPECT_DOUBLE_EQ(j1.work_done(), 4'000.0);
  ASSERT_TRUE(j1.placed());
  EXPECT_NE(j1.node(), dead);
  EXPECT_TRUE(cluster.node_online(j1.node()));
  // The survivor was untouched.
  EXPECT_EQ(j2.crash_count(), 0);
}

TEST(ApcControllerRepairTest, RepairRestartsDisplacedTxInstances) {
  ClusterSpec cluster = SmallCluster(3);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 10.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  // 1,500 MHz of demand on 1,000 MHz nodes needs both allowed instances up,
  // leaving one node uncovered — the slot the repair can restart into.
  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "tx";
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 3'000.0;
  spec.max_instances = 2;
  controller.AddTransactionalApp(spec, std::make_shared<ConstantRate>(1'500.0));

  controller.Attach(sim, 0.0);
  NodeId dead = kInvalidNode;
  sim.ScheduleAt(5.0, [&](Simulation& s) {
    ASSERT_EQ(controller.tx_instances(0).size(), 2u);
    dead = controller.tx_instances(0).front();
    cluster.SetNodeOffline(dead);
    controller.OnNodeFault(s);
  });
  sim.RunUntil(6.0);

  ASSERT_EQ(controller.repairs().size(), 1u);
  const RepairStats& repair = controller.repairs()[0];
  EXPECT_EQ(repair.tx_displaced, 1);
  EXPECT_EQ(repair.tx_replaced, 1);  // restarted on the uncovered node
  EXPECT_EQ(repair.failed_operations, 0);
  const std::vector<NodeId>& instances = controller.tx_instances(0);
  ASSERT_EQ(instances.size(), 2u);
  for (NodeId n : instances) {
    EXPECT_NE(n, dead);
    EXPECT_TRUE(cluster.node_online(n));
  }
}

TEST(ApcControllerRepairTest, ChurnBoundLimitsRepairActions) {
  ClusterSpec cluster = SmallCluster(3);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 10.0;
  cfg.costs = VmCostModel::Free();
  cfg.repair_max_changes = 0;  // diagnose only, change nothing
  ApcController controller(&cluster, &queue, cfg);

  Job& j1 = queue.Submit(MakeJob(1, 0.0, 20'000.0, 1'000.0, 2.0));
  controller.Attach(sim, 0.0);
  sim.ScheduleAt(5.0, [&](Simulation& s) {
    cluster.SetNodeOffline(j1.node());
    controller.OnNodeFault(s);
  });
  sim.RunUntil(6.0);

  ASSERT_EQ(controller.repairs().size(), 1u);
  const RepairStats& repair = controller.repairs()[0];
  EXPECT_EQ(repair.jobs_requeued, 1);   // crash bookkeeping is not churn
  EXPECT_EQ(repair.job_placements, 0);  // ... but restarts are
  EXPECT_FALSE(j1.placed());            // waits for the next full cycle
}

TEST(ApcControllerRepairTest, VetoedStartIsRetriedNextCycle) {
  const ClusterSpec cluster = SmallCluster(1);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  int calls = 0;
  cfg.vm_operation_oracle = [&calls](PlacementChange::Kind, AppId) {
    return ++calls <= 1;  // the first start attempt fails, the rest succeed
  };
  ApcController controller(&cluster, &queue, cfg);

  Job& job = queue.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(1.5);

  // Cycle 0's start was vetoed; cycle 1 retried and succeeded.
  ASSERT_GE(controller.cycles().size(), 2u);
  EXPECT_EQ(controller.cycles()[0].failed_operations, 1);
  EXPECT_FALSE(controller.cycles()[0].starts > 0 &&
               controller.cycles()[0].queued_jobs == 0);
  EXPECT_EQ(controller.cycles()[1].failed_operations, 0);
  EXPECT_TRUE(job.placed());
  // Work only accrues from the successful second start.
  controller.AdvanceJobsTo(1.5);
  EXPECT_NEAR(job.work_done(), 500.0, 1.0);
}

}  // namespace
}  // namespace mwp

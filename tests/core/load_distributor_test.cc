#include "core/load_distributor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

TransactionalAppSpec TxSpec(AppId id, MHz saturation = 900.0,
                            Megabytes mem = 500.0) {
  TransactionalAppSpec spec;
  spec.id = id;
  spec.name = "tx";
  spec.memory_per_instance = mem;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = saturation;
  return spec;
}

TEST(LoadDistributorTest, SingleJobGetsMaxSpeed) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  const PlacementSnapshot snap = b.Build();
  LoadDistributor dist(&snap);
  const auto result = dist.Distribute(snap.current_placement());
  EXPECT_NEAR(result.totals[0], 1'000.0, 1.0);
  EXPECT_NEAR(result.utilities[0], 0.8, 0.01);  // completes at 4 of goal 20
}

TEST(LoadDistributorTest, SpeedCapLeavesCpuIdle) {
  // A 500 MHz-max job on a 1,000 MHz node cannot use the second half.
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 2'000.0, 500.0, 750.0, 0.0, 4.0, JobStatus::kRunning, 0);
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_NEAR(result.totals[0], 500.0, 1.0);
}

TEST(LoadDistributorTest, EqualJobsShareEqually) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  b.AddJob(2, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_NEAR(result.totals[0], 500.0, 5.0);
  EXPECT_NEAR(result.totals[1], 500.0, 5.0);
  EXPECT_NEAR(result.utilities[0], result.utilities[1], 0.01);
}

TEST(LoadDistributorTest, MaxMinFavoursTheNeedy) {
  // Same node, same work, but job 2's goal is much tighter: equalizing
  // relative performance gives job 2 more CPU.
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 2'000.0, 1'000.0, 750.0, 0.0, 8.0, JobStatus::kRunning, 0);
  b.AddJob(2, 2'000.0, 1'000.0, 750.0, 0.0, 2.5, JobStatus::kRunning, 0);
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_GT(result.totals[1], result.totals[0]);
  EXPECT_NEAR(result.utilities[0], result.utilities[1], 0.02);
  EXPECT_NEAR(result.totals[0] + result.totals[1], 1'000.0, 5.0);
}

TEST(LoadDistributorTest, SaturatedJobYieldsSurplus) {
  // Job 1's goal is so tight that even at its 200 MHz cap it stays the
  // worst-off entity: it fixes at saturation and job 2 takes the surplus.
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 400.0, 200.0, 750.0, 0.0, 1.05, JobStatus::kRunning, 0);
  b.AddJob(2, 4'000.0, 1'000.0, 750.0, 0.0, 3.0, JobStatus::kRunning, 0);
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_NEAR(result.totals[0], 200.0, 2.0);
  EXPECT_NEAR(result.totals[1], 800.0, 2.0);
  EXPECT_GT(result.utilities[1], result.utilities[0]);
}

TEST(LoadDistributorTest, JobsOnSeparateNodesIndependent) {
  SnapshotBuilder b(TinyCluster(2));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  b.AddJob(2, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 1);
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_NEAR(result.totals[0], 1'000.0, 1.0);
  EXPECT_NEAR(result.totals[1], 1'000.0, 1.0);
  EXPECT_DOUBLE_EQ(result.loads.at(0, 0), result.totals[0]);
  EXPECT_DOUBLE_EQ(result.loads.at(1, 1), result.totals[1]);
}

TEST(LoadDistributorTest, UnplacedJobGetsNothing) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  b.AddJob(2, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);  // queued
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_FALSE(result.placed[1]);
  EXPECT_DOUBLE_EQ(result.totals[1], 0.0);
  EXPECT_DOUBLE_EQ(result.utilities[1], kUtilityFloor);
}

TEST(LoadDistributorTest, TxSharesNodeWithJob) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  b.AddTx(TxSpec(10, /*saturation=*/900.0), /*rate=*/400.0, {0});
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  // Both positive, node capacity respected.
  EXPECT_GT(result.totals[0], 0.0);
  EXPECT_GT(result.totals[1], 0.0);
  EXPECT_LE(result.totals[0] + result.totals[1], 1'000.0 + 1e-6);
  // Relative performance approximately equalized.
  EXPECT_NEAR(result.utilities[0], result.utilities[1], 0.05);
}

TEST(LoadDistributorTest, TxSpansMultipleNodes) {
  SnapshotBuilder b(TinyCluster(3));
  b.AddTx(TxSpec(10, /*saturation=*/2'500.0), /*rate=*/1'500.0, {0, 1, 2});
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  // Saturation 2,500 < 3,000 total: the app gets its saturation allocation.
  EXPECT_NEAR(result.totals[0], 2'500.0, 5.0);
  // Routed across the three instances within node capacity.
  for (int n = 0; n < 3; ++n) {
    EXPECT_LE(result.loads.at(0, n), 1'000.0 + 1e-6);
  }
  EXPECT_NEAR(result.loads.at(0, 0) + result.loads.at(0, 1) +
                  result.loads.at(0, 2),
              2'500.0, 5.0);
}

TEST(LoadDistributorTest, QuiescedTxIsSatisfiedWithZero) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddTx(TxSpec(10), /*rate=*/0.0, {0});
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_DOUBLE_EQ(result.totals[0], 0.0);
  EXPECT_DOUBLE_EQ(result.utilities[0], 1.0);
}

TEST(LoadDistributorTest, MinSpeedPausesStarvedJob) {
  // Two jobs on one node; job 2 requires at least 800 MHz whenever it runs.
  // Fair sharing would give it ~500, below its minimum, so it is paused.
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  auto& j2 =
      b.AddJob(2, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  j2.min_speed = 800.0;
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_DOUBLE_EQ(result.totals[1], 0.0);
  EXPECT_GT(result.totals[0], 0.0);
}

TEST(LoadDistributorTest, NodeCapacityNeverExceeded) {
  SnapshotBuilder b(TinyCluster(2));
  b.AddJob(1, 40'000.0, 1'000.0, 750.0, 0.0, 1.1, JobStatus::kRunning, 0);
  b.AddJob(2, 40'000.0, 1'000.0, 750.0, 0.0, 1.1, JobStatus::kRunning, 0);
  b.AddJob(3, 40'000.0, 1'000.0, 750.0, 0.0, 1.1, JobStatus::kRunning, 1);
  b.AddTx(TxSpec(10, 1'800.0), 900.0, {0, 1});
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  for (int n = 0; n < 2; ++n) {
    EXPECT_LE(result.loads.NodeLoad(n), 1'000.0 + 1e-5) << "node " << n;
  }
}

TEST(LoadDistributorTest, InfeasiblePlacementRejected) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 1'500.0, 0.0, 5.0);
  b.AddJob(2, 4'000.0, 1'000.0, 1'500.0, 0.0, 5.0);
  const PlacementSnapshot snap = b.Build();
  PlacementMatrix p(2, 1);
  p.at(0, 0) = 1;
  p.at(1, 0) = 1;  // 3,000 MB on a 2,000 MB node
  EXPECT_THROW(LoadDistributor(&snap).Distribute(p), std::logic_error);
}

TEST(LoadDistributorTest, HopelessJobStillGetsMaxUseful) {
  // Goal long past: the job is the worst-off entity, so max-min gives it
  // everything it can use.
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 1.01, JobStatus::kRunning, 0,
           /*done=*/0.0);
  auto& v = b.jobs.back();
  v.goal.completion_goal = 0.5;  // unreachable: min time is 4 s
  v.goal.desired_start = 0.0;
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_NEAR(result.totals[0], 1'000.0, 1.0);
  EXPECT_LT(result.utilities[0], 0.0);
}

TEST(LoadDistributorTest, BatchLevelReported) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0, JobStatus::kRunning, 0);
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());
  EXPECT_FALSE(std::isnan(result.batch_level));
  EXPECT_GT(result.batch_level, 0.0);
}

TEST(LoadDistributorTest, QueuedJobsPullCpuFromTx) {
  // The Experiment Three mechanism in miniature: one placed job, several
  // queued ones, and a transactional app. Under the aggregate model the
  // batch entity demands CPU on behalf of the queue, squeezing the tx app
  // below its ceiling; per-job bargaining (the ablation) leaves the tx app
  // at its ceiling because the placed job alone is easily satisfied.
  auto build = [] {
    SnapshotBuilder b(TinyCluster(1));
    b.AddJob(1, 2'000.0, 900.0, 400.0, 0.0, 8.0, JobStatus::kRunning, 0);
    for (int j = 2; j <= 4; ++j) {
      b.AddJob(j, 2'000.0, 900.0, 400.0, 0.0, 8.0);  // queued
    }
    TransactionalAppSpec spec;
    spec.id = 50;
    spec.name = "tx";
    spec.memory_per_instance = 200.0;
    spec.response_time_goal = 1.0;
    spec.demand_per_request = 4.0;
    spec.min_response_time = 0.1;
    spec.saturation_allocation = 800.0;
    b.AddTx(spec, /*rate=*/100.0, {0});
    return b;
  };

  auto b_agg = build();
  const PlacementSnapshot snap_agg = b_agg.Build();
  const auto aggregate =
      LoadDistributor(&snap_agg).Distribute(snap_agg.current_placement());

  auto b_solo = build();
  const PlacementSnapshot snap_solo = b_solo.Build();
  LoadDistributor::Options ablation;
  ablation.batch_aggregate = false;
  const auto per_job = LoadDistributor(&snap_solo, ablation)
                           .Distribute(snap_solo.current_placement());

  const std::size_t tx_entity = 4;  // after the four jobs
  EXPECT_LT(aggregate.totals[tx_entity], per_job.totals[tx_entity])
      << "queued jobs must pull CPU away from the tx app";
  EXPECT_GT(aggregate.totals[0], per_job.totals[0])
      << "the placed job carries the queue's share";
}

TEST(LoadDistributorTest, PerJobModeMatchesAggregateWithoutQueue) {
  // With every job placed and no transactional contention the two modes
  // coincide: everyone runs at max speed.
  for (bool aggregate : {true, false}) {
    SnapshotBuilder b(TinyCluster(2));
    b.AddJob(1, 2'000.0, 400.0, 750.0, 0.0, 6.0, JobStatus::kRunning, 0);
    b.AddJob(2, 2'000.0, 400.0, 750.0, 0.0, 6.0, JobStatus::kRunning, 1);
    const PlacementSnapshot snap = b.Build();
    LoadDistributor::Options opts;
    opts.batch_aggregate = aggregate;
    const auto result =
        LoadDistributor(&snap, opts).Distribute(snap.current_placement());
    EXPECT_NEAR(result.totals[0], 400.0, 1.0) << "aggregate=" << aggregate;
    EXPECT_NEAR(result.totals[1], 400.0, 1.0) << "aggregate=" << aggregate;
  }
}

TEST(LoadDistributorTest, HypotheticalExposedForAggregateMode) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 4'000.0, 1'000.0, 750.0, 0.0, 5.0);
  const PlacementSnapshot snap = b.Build();
  LoadDistributor with(&snap);
  EXPECT_NE(with.hypothetical(), nullptr);
  LoadDistributor::Options ablation;
  ablation.batch_aggregate = false;
  LoadDistributor without(&snap, ablation);
  EXPECT_EQ(without.hypothetical(), nullptr);
}

class LoadDistributorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LoadDistributorPropertyTest, InvariantsHoldUnderRandomWorkloads) {
  const auto [num_nodes, num_jobs] = GetParam();
  Rng rng(static_cast<std::uint64_t>(num_nodes * 1'000 + num_jobs));
  SnapshotBuilder b(TinyCluster(num_nodes));
  for (int j = 0; j < num_jobs; ++j) {
    const MHz speed = rng.Uniform(100.0, 1'000.0);
    const Megacycles work = speed * rng.Uniform(2.0, 50.0);
    const auto node = static_cast<NodeId>(
        rng.UniformInt(0, num_nodes - 1));
    b.AddJob(j + 1, work, speed, 100.0, 0.0, rng.Uniform(1.1, 5.0),
             JobStatus::kRunning, node);
  }
  b.now = rng.Uniform(0.0, 10.0);
  const PlacementSnapshot snap = b.Build();
  const auto result = LoadDistributor(&snap).Distribute(snap.current_placement());

  // Invariant 1: node capacities respected.
  for (int n = 0; n < num_nodes; ++n) {
    EXPECT_LE(result.loads.NodeLoad(n), 1'000.0 + 1e-5);
  }
  // Invariant 2: no job exceeds its max speed.
  for (int j = 0; j < num_jobs; ++j) {
    EXPECT_LE(result.totals[static_cast<std::size_t>(j)],
              snap.job(j).max_speed + 1e-5);
    // Invariant 3: totals match the routed loads.
    EXPECT_NEAR(result.loads.AppAllocation(j),
                result.totals[static_cast<std::size_t>(j)], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, LoadDistributorPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 3, 6, 12)));

}  // namespace
}  // namespace mwp

#include "core/speed_math.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

TEST(SpeedMathTest, MaxUsefulSpeedSingleStage) {
  const JobProfile p = JobProfile::SingleStage(1'000.0, 750.0, 100.0);
  EXPECT_DOUBLE_EQ(speed_math::MaxUsefulSpeed(p, 0.0), 750.0);
  EXPECT_DOUBLE_EQ(speed_math::MaxUsefulSpeed(p, 500.0), 750.0);
}

TEST(SpeedMathTest, MaxUsefulSpeedSkipsFinishedStages) {
  const JobProfile p({JobStage{1'000.0, 2'000.0, 0.0, 100.0},
                      JobStage{1'000.0, 500.0, 0.0, 100.0}});
  EXPECT_DOUBLE_EQ(speed_math::MaxUsefulSpeed(p, 0.0), 2'000.0);
  // After stage 1 finishes, only the slow stage remains.
  EXPECT_DOUBLE_EQ(speed_math::MaxUsefulSpeed(p, 1'000.0), 500.0);
}

TEST(SpeedMathTest, InvertSingleStageClosedForm) {
  const JobProfile p = JobProfile::SingleStage(4'000.0, 1'000.0, 100.0);
  EXPECT_DOUBLE_EQ(speed_math::InvertRemainingTime(p, 0.0, 8.0), 500.0);
  EXPECT_DOUBLE_EQ(speed_math::InvertRemainingTime(p, 2'000.0, 4.0), 500.0);
}

TEST(SpeedMathTest, InvertClampsAtMaxSpeed) {
  const JobProfile p = JobProfile::SingleStage(4'000.0, 1'000.0, 100.0);
  // Budget shorter than the 4 s minimum: answer saturates at max speed.
  EXPECT_DOUBLE_EQ(speed_math::InvertRemainingTime(p, 0.0, 2.0), 1'000.0);
}

TEST(SpeedMathTest, InvertMultiStageRoundTrips) {
  const JobProfile p({JobStage{1'000.0, 1'000.0, 0.0, 100.0},
                      JobStage{2'000.0, 500.0, 0.0, 100.0}});
  for (Seconds budget : {5.5, 6.0, 8.0, 12.0, 30.0}) {
    const MHz speed = speed_math::InvertRemainingTime(p, 0.0, budget);
    EXPECT_NEAR(p.RemainingTimeAtSpeed(0.0, speed), budget, 1e-6)
        << "budget=" << budget;
  }
}

TEST(SpeedMathTest, InvertMultiStageBelowMinTimeSaturates) {
  const JobProfile p({JobStage{1'000.0, 1'000.0, 0.0, 100.0},
                      JobStage{2'000.0, 500.0, 0.0, 100.0}});
  // Minimum remaining time is 5 s; a 3 s budget cannot be met.
  EXPECT_DOUBLE_EQ(speed_math::InvertRemainingTime(p, 0.0, 3.0), 1'000.0);
}

TEST(SpeedMathTest, InvertRequiresPositiveBudgetAndWork) {
  const JobProfile p = JobProfile::SingleStage(100.0, 100.0, 1.0);
  EXPECT_THROW(speed_math::InvertRemainingTime(p, 0.0, 0.0), std::logic_error);
  EXPECT_THROW(speed_math::InvertRemainingTime(p, 100.0, 1.0),
               std::logic_error);
}

}  // namespace
}  // namespace mwp

// Property test: the incremental evaluation engine (column cache, scratch
// reuse, bound-based early exit, parallel candidate search) is bit-for-bit
// equivalent to a freshly-constructed sequential evaluator. Every speedup in
// the hot path is justified by an exactness argument (memoized values are
// the exact doubles recomputation would produce, summation orders are
// preserved); this test checks the end-to-end claim over randomized
// snapshots with exact ==, not tolerances.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/placement_optimizer.h"
#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;

/// A small random mixed-workload snapshot: a few nodes, a batch of jobs in
/// random states, and up to two transactional apps.
SnapshotBuilder RandomSnapshot(Rng& rng) {
  const int nodes = static_cast<int>(rng.UniformInt(1, 4));
  SnapshotBuilder b(
      ClusterSpec::Uniform(nodes, NodeSpec{1, 1'000.0, 2'000.0}));
  b.now = rng.Uniform(0.0, 10.0);
  b.cycle = rng.Uniform(0.5, 2.0);
  // Free memory per node: the generated *current* placement must be
  // feasible, so instances land only where they fit.
  std::vector<Megabytes> free_mem(static_cast<std::size_t>(nodes), 2'000.0);
  auto pick_node = [&](Megabytes need) -> NodeId {
    const int start = static_cast<int>(rng.UniformInt(0, nodes - 1));
    for (int k = 0; k < nodes; ++k) {
      const int n = (start + k) % nodes;
      if (free_mem[static_cast<std::size_t>(n)] >= need) return n;
    }
    return kInvalidNode;
  };

  const int num_jobs = static_cast<int>(rng.UniformInt(0, 7));
  for (int j = 0; j < num_jobs; ++j) {
    const Megacycles work = rng.Uniform(500.0, 8'000.0);
    const MHz max_speed = rng.Uniform(200.0, 1'000.0);
    const Megabytes memory = rng.Uniform(200.0, 900.0);
    const Seconds submit = rng.Uniform(0.0, b.now);
    const double factor = rng.Uniform(1.5, 6.0);
    JobStatus status = JobStatus::kNotStarted;
    NodeId node = kInvalidNode;
    Megacycles done = 0.0;
    const double roll = rng.Uniform01();
    if (roll < 0.4) {
      node = pick_node(memory);
      if (node != kInvalidNode) {
        status = JobStatus::kRunning;
        done = rng.Uniform(0.0, 0.8 * work);
        free_mem[static_cast<std::size_t>(node)] -= memory;
      }
    } else if (roll < 0.55) {
      status = JobStatus::kSuspended;
      done = rng.Uniform(0.0, 0.8 * work);
    }
    JobView& v = b.AddJob(j + 1, work, max_speed, memory, submit, factor,
                          status, node, done);
    if (status == JobStatus::kSuspended || status == JobStatus::kNotStarted) {
      v.place_overhead = rng.Uniform(0.0, 0.2);
    }
  }

  const int num_tx = static_cast<int>(rng.UniformInt(0, 2));
  for (int w = 0; w < num_tx; ++w) {
    TransactionalAppSpec spec;
    spec.id = 100 + w;
    spec.name = "tx";
    spec.memory_per_instance = rng.Uniform(300.0, 800.0);
    spec.response_time_goal = rng.Uniform(0.5, 2.0);
    spec.demand_per_request = rng.Uniform(5.0, 30.0);
    spec.min_response_time = 0.05;
    spec.saturation_allocation = rng.Uniform(400.0, 1'200.0);
    std::vector<NodeId> on;
    if (rng.Uniform01() < 0.7) {
      const NodeId n = pick_node(spec.memory_per_instance);
      if (n != kInvalidNode) {
        on.push_back(n);
        free_mem[static_cast<std::size_t>(n)] -= spec.memory_per_instance;
      }
    }
    b.AddTx(spec, rng.Uniform(1.0, 25.0), std::move(on));
  }
  return b;
}

PlacementOptimizer::Options ReferenceOptions() {
  PlacementOptimizer::Options o;
  o.evaluator.incremental = false;
  o.search_threads = 1;
  return o;
}

void ExpectIdentical(const PlacementOptimizer::Result& got,
                     const PlacementOptimizer::Result& want,
                     std::uint64_t seed) {
  EXPECT_EQ(got.placement, want.placement) << "seed " << seed;
  EXPECT_EQ(got.evaluations, want.evaluations) << "seed " << seed;
  EXPECT_EQ(got.used_shortcut, want.used_shortcut) << "seed " << seed;
  // Exact ==: the engines must produce the same doubles, not close ones.
  EXPECT_EQ(got.evaluation.sorted_utilities, want.evaluation.sorted_utilities)
      << "seed " << seed;
  EXPECT_EQ(got.evaluation.entity_utilities, want.evaluation.entity_utilities)
      << "seed " << seed;
  EXPECT_EQ(got.evaluation.changes, want.evaluation.changes)
      << "seed " << seed;
  EXPECT_EQ(got.evaluation.distribution.totals,
            want.evaluation.distribution.totals)
      << "seed " << seed;
}

TEST(EvaluatorEquivalenceTest, IncrementalMatchesReferenceOnRandomSnapshots) {
  constexpr int kSnapshots = 220;
  for (std::uint64_t seed = 1; seed <= kSnapshots; ++seed) {
    Rng rng(seed);
    const SnapshotBuilder b = RandomSnapshot(rng);
    const PlacementSnapshot snap = b.Build();

    const PlacementOptimizer optimized(&snap);  // defaults: all engines on
    const PlacementOptimizer reference(&snap, ReferenceOptions());
    ExpectIdentical(optimized.Optimize(), reference.Optimize(), seed);
    if (HasFailure()) break;
  }
}

TEST(EvaluatorEquivalenceTest, ParallelSearchMatchesReference) {
  // Force multiple lanes regardless of the host's core count: the chunked
  // search must pick the same winners in the same order.
  PlacementOptimizer::Options parallel;
  parallel.search_threads = 4;
  for (std::uint64_t seed = 1'000; seed < 1'060; ++seed) {
    Rng rng(seed);
    const SnapshotBuilder b = RandomSnapshot(rng);
    const PlacementSnapshot snap = b.Build();

    const PlacementOptimizer optimized(&snap, parallel);
    const PlacementOptimizer reference(&snap, ReferenceOptions());
    ExpectIdentical(optimized.Optimize(), reference.Optimize(), seed);
    if (HasFailure()) break;
  }
}

TEST(EvaluatorEquivalenceTest, RepeatedEvaluationsReuseCacheExactly) {
  // Evaluating the same placements twice through one evaluator must return
  // the same doubles as the first pass (the cache returns what it stored),
  // and the cache must actually be exercised.
  Rng rng(42);
  const SnapshotBuilder b = RandomSnapshot(rng);
  const PlacementSnapshot snap = b.Build();
  const PlacementEvaluator eval(&snap);

  const PlacementMatrix& current = snap.current_placement();
  const PlacementEvaluation first = eval.Evaluate(current);
  const PlacementEvaluation second = eval.Evaluate(current);
  EXPECT_EQ(first.sorted_utilities, second.sorted_utilities);
  EXPECT_EQ(first.entity_utilities, second.entity_utilities);
  if (snap.num_jobs() > 0) {
    EXPECT_GT(eval.cache_misses(), 0u);
  }
}

}  // namespace
}  // namespace mwp

#include "core/constraints.h"

#include <gtest/gtest.h>

#include "core/apc_controller.h"
#include "core/placement_optimizer.h"
#include "tests/core/test_fixtures.h"

namespace mwp {
namespace {

using testing_fixtures::SnapshotBuilder;
using testing_fixtures::TinyCluster;

TEST(PlacementConstraintsTest, UnconstrainedAllowsEverything) {
  PlacementConstraints c;
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.AllowsNode(1, 0));
  EXPECT_TRUE(c.AllowsCollocation(1, 2));
}

TEST(PlacementConstraintsTest, PinningRestrictsNodes) {
  PlacementConstraints c;
  c.PinTo(7, {1, 3});
  EXPECT_FALSE(c.AllowsNode(7, 0));
  EXPECT_TRUE(c.AllowsNode(7, 1));
  EXPECT_FALSE(c.AllowsNode(7, 2));
  EXPECT_TRUE(c.AllowsNode(7, 3));
  // Other applications are unaffected.
  EXPECT_TRUE(c.AllowsNode(8, 0));
}

TEST(PlacementConstraintsTest, ClearPinRemovesRestriction) {
  PlacementConstraints c;
  c.PinTo(7, {1});
  c.ClearPin(7);
  EXPECT_TRUE(c.AllowsNode(7, 0));
}

TEST(PlacementConstraintsTest, EmptyPinRejected) {
  PlacementConstraints c;
  EXPECT_THROW(c.PinTo(7, {}), std::logic_error);
}

TEST(PlacementConstraintsTest, SeparationIsSymmetric) {
  PlacementConstraints c;
  c.Separate(1, 2);
  EXPECT_FALSE(c.AllowsCollocation(1, 2));
  EXPECT_FALSE(c.AllowsCollocation(2, 1));
  EXPECT_TRUE(c.AllowsCollocation(1, 3));
}

TEST(PlacementConstraintsTest, SelfSeparationRejected) {
  PlacementConstraints c;
  EXPECT_THROW(c.Separate(4, 4), std::logic_error);
}

TEST(PlacementConstraintsTest, DuplicateSeparationIdempotent) {
  PlacementConstraints c;
  c.Separate(1, 2);
  c.Separate(2, 1);
  EXPECT_EQ(c.separations().size(), 1u);
}

TEST(ConstrainedFeasibilityTest, PinningEnforcedByIsFeasible) {
  SnapshotBuilder b(TinyCluster(3));
  b.AddJob(42, 2'000.0, 500.0, 500.0, 0.0, 5.0);
  PlacementSnapshot snap = b.Build();
  PlacementConstraints c;
  c.PinTo(42, {2});
  snap.set_constraints(c);

  PlacementMatrix p(1, 3);
  p.at(0, 0) = 1;
  EXPECT_FALSE(snap.IsFeasible(p));
  p.at(0, 0) = 0;
  p.at(0, 2) = 1;
  EXPECT_TRUE(snap.IsFeasible(p));
}

TEST(ConstrainedFeasibilityTest, AntiCollocationEnforced) {
  SnapshotBuilder b(TinyCluster(2));
  b.AddJob(1, 2'000.0, 500.0, 500.0, 0.0, 5.0);
  b.AddJob(2, 2'000.0, 500.0, 500.0, 0.0, 5.0);
  PlacementSnapshot snap = b.Build();
  PlacementConstraints c;
  c.Separate(1, 2);
  snap.set_constraints(c);

  PlacementMatrix together(2, 2);
  together.at(0, 0) = 1;
  together.at(1, 0) = 1;
  EXPECT_FALSE(snap.IsFeasible(together));

  PlacementMatrix apart(2, 2);
  apart.at(0, 0) = 1;
  apart.at(1, 1) = 1;
  EXPECT_TRUE(snap.IsFeasible(apart));
}

TEST(ConstrainedFeasibilityTest, SeparationWithAbsentPartyIgnored) {
  SnapshotBuilder b(TinyCluster(1));
  b.AddJob(1, 2'000.0, 500.0, 500.0, 0.0, 5.0);
  PlacementSnapshot snap = b.Build();
  PlacementConstraints c;
  c.Separate(1, 999);  // 999 is not in the snapshot
  snap.set_constraints(c);
  PlacementMatrix p(1, 1);
  p.at(0, 0) = 1;
  EXPECT_TRUE(snap.IsFeasible(p));
}

TEST(ConstrainedOptimizerTest, OptimizerHonoursPinning) {
  SnapshotBuilder b(TinyCluster(3));
  b.AddJob(42, 2'000.0, 500.0, 500.0, 0.0, 5.0);
  PlacementSnapshot snap = b.Build();
  PlacementConstraints c;
  c.PinTo(42, {1});
  snap.set_constraints(c);

  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  ASSERT_EQ(result.placement.InstanceCount(0), 1);
  EXPECT_EQ(result.placement.NodesOf(0), (std::vector<int>{1}));
}

TEST(ConstrainedOptimizerTest, OptimizerSeparatesRivals) {
  SnapshotBuilder b(TinyCluster(2));
  b.AddJob(1, 2'000.0, 500.0, 500.0, 0.0, 5.0);
  b.AddJob(2, 2'000.0, 500.0, 500.0, 0.0, 5.0);
  PlacementSnapshot snap = b.Build();
  PlacementConstraints c;
  c.Separate(1, 2);
  snap.set_constraints(c);

  PlacementOptimizer opt(&snap);
  const auto result = opt.Optimize();
  EXPECT_EQ(result.placement.InstanceCount(0), 1);
  EXPECT_EQ(result.placement.InstanceCount(1), 1);
  for (int n = 0; n < 2; ++n) {
    EXPECT_LE(result.placement.at(0, n) + result.placement.at(1, n), 1)
        << "rivals share node " << n;
  }
}

TEST(ConstrainedControllerTest, QuickDispatchRespectsPinning) {
  const ClusterSpec cluster = TinyCluster(3);
  JobQueue queue;
  Simulation sim;
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  PlacementConstraints c;
  c.PinTo(5, {2});
  cfg.constraints = c;
  ApcController controller(&cluster, &queue, cfg);
  controller.Attach(sim, 0.0);
  sim.RunUntil(0.5);  // a cycle has run; quick dispatch path is now live

  JobProfile p = JobProfile::SingleStage(1'000.0, 500.0, 500.0);
  queue.Submit(
      std::make_unique<Job>(5, "pinned", p, JobGoal::FromFactor(0.5, 5.0, 2.0)));
  controller.OnJobSubmitted(sim);
  const Job* job = queue.Find(5);
  ASSERT_TRUE(job->placed());
  EXPECT_EQ(job->node(), 2);
}

}  // namespace
}  // namespace mwp

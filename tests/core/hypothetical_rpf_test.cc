#include "core/hypothetical_rpf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mwp {
namespace {

// The §4.3 example, evaluated at the start of cycle 3 (t = 2 s) under
// placement P2 of cycle 2 (J1 ran alone at 1,000 MHz): J1 has 2,000 Mc done,
// J2 none. See the worked numbers in Figure 1.
struct Example43Cycle2 {
  JobProfile j1 = JobProfile::SingleStage(4'000.0, 1'000.0, 750.0);
  JobProfile j2 = JobProfile::SingleStage(2'000.0, 500.0, 750.0);
  JobGoal g1 = JobGoal::FromFactor(0.0, 5.0, 4.0);  // goal 20

  HypotheticalRpf Make(double j2_factor, Megacycles j1_done,
                       Megacycles j2_done) {
    JobGoal g2 = JobGoal::FromFactor(1.0, j2_factor, 4.0);
    std::vector<HypotheticalJobState> states = {
        {&j1, g1, j1_done, 0.0},
        {&j2, g2, j2_done, 0.0},
    };
    return HypotheticalRpf(std::move(states), /*t_eval=*/2.0);
  }
};

TEST(HypotheticalRpfTest, Eq3SpeedForTarget) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(/*j2_factor=*/4.0, 2'000.0, 0.0);
  // J1: rem 2,000, t(0.7) = 20 - 0.7*20 = 6, budget 4 s → 500 MHz.
  EXPECT_NEAR(hyp.SpeedFor(0, 0.7), 500.0, 1e-9);
  // J2 (goal 17, rel 16): t(0.5) = 17 - 8 = 9, budget 7 s → 285.7 MHz.
  EXPECT_NEAR(hyp.SpeedFor(1, 0.5), 2'000.0 / 7.0, 1e-6);
}

TEST(HypotheticalRpfTest, MaxAchievableMatchesPaper) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 2'000.0, 0.0);
  // J1: earliest completion 2 + 2 = 4 → (20-4)/20 = 0.8.
  EXPECT_NEAR(hyp.MaxAchievable(0), 0.8, 1e-9);
  // J2: earliest completion 2 + 4 = 6 → (17-6)/16 = 0.6875.
  EXPECT_NEAR(hyp.MaxAchievable(1), 0.6875, 1e-9);
}

TEST(HypotheticalRpfTest, SpeedClampsAtMaxAchievable) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 2'000.0, 0.0);
  // Beyond u_max the required speed stays at the saturating value (Eq. 4).
  EXPECT_DOUBLE_EQ(hyp.SpeedFor(1, 0.9), hyp.SpeedFor(1, 0.6875));
  EXPECT_NEAR(hyp.SpeedFor(1, 0.9), 500.0, 1e-6);
}

TEST(HypotheticalRpfTest, EvaluateScenario1Placement2) {
  // Figure 1, S1 cycle 2, P2 boxes: with ω_g = 1,000 MHz the interpolation
  // yields u ≈ 0.7 for J1 (500 MHz) and u ≈ 0.69 for J2 (500 MHz).
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 2'000.0, 0.0);
  const auto outcomes = hyp.Evaluate(1'000.0);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_NEAR(outcomes[0].utility, 0.70, 0.02);
  EXPECT_NEAR(outcomes[0].speed, 500.0, 25.0);
  EXPECT_NEAR(outcomes[1].utility, 0.6875, 0.02);
  EXPECT_NEAR(outcomes[1].speed, 500.0, 25.0);
}

TEST(HypotheticalRpfTest, EvaluateScenario1Placement1) {
  // Figure 1, S1 cycle 2, P1 boxes: J1 done 1,500 / J2 done 500 at t = 2,
  // ω_g = 1,000 → u ≈ 0.7 each with speeds ≈ (612, 387).
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 1'500.0, 500.0);
  const auto outcomes = hyp.Evaluate(1'000.0);
  EXPECT_NEAR(outcomes[0].utility, 0.695, 0.02);
  EXPECT_NEAR(outcomes[1].utility, 0.695, 0.02);
  EXPECT_NEAR(outcomes[0].speed, 615.0, 30.0);
  EXPECT_NEAR(outcomes[1].speed, 390.0, 30.0);
}

TEST(HypotheticalRpfTest, EvaluateScenario2ShowsClamping) {
  // Figure 1, S2 cycle 2, P2 boxes: J2's tightened goal (13 s) caps its
  // achievable RP at (12-5)/12 ≈ 0.583; J1 takes the slack and lands ≈ 0.7.
  Example43Cycle2 ex;
  auto hyp = ex.Make(3.0, 2'000.0, 0.0);
  const auto outcomes = hyp.Evaluate(1'000.0);
  EXPECT_NEAR(outcomes[1].utility, 0.583, 0.02);
  EXPECT_NEAR(outcomes[1].speed, 500.0, 10.0);
  EXPECT_NEAR(outcomes[0].utility, 0.70, 0.02);
  EXPECT_NEAR(outcomes[0].speed, 500.0, 25.0);
}

TEST(HypotheticalRpfTest, EvaluateScenario2Placement1Equalizes) {
  // Figure 1, S2 cycle 2, P1 boxes: (0.65, 0.65) with speeds ≈ (516, 483).
  Example43Cycle2 ex;
  auto hyp = ex.Make(3.0, 1'500.0, 500.0);
  const auto outcomes = hyp.Evaluate(1'000.0);
  EXPECT_NEAR(outcomes[0].utility, 0.655, 0.02);
  EXPECT_NEAR(outcomes[1].utility, 0.655, 0.02);
  EXPECT_NEAR(outcomes[0].speed + outcomes[1].speed, 1'000.0, 1.0);
}

TEST(HypotheticalRpfTest, HopelesslyLateJobClampsToGridFloor) {
  // Regression: a job so far past its goal that its raw maximum achievable
  // RP lies below the grid floor. Reconstructing the deadline from such a
  // u_max cancels catastrophically (budget ≤ 0 → infinite required speed);
  // the column must instead clamp to the floor with the job's finite
  // flat-out speed.
  JobProfile p = JobProfile::SingleStage(1'000.0, 1'000.0, 750.0);
  JobGoal goal = JobGoal::FromFactor(0.0, 2.0, 1.0);  // goal at t = 2 s
  std::vector<HypotheticalJobState> states = {{&p, goal, 0.0, 0.0}};
  // Evaluated 1,000 s in: raw u ≈ (2 - 1001) / 2 ≈ -500, far below -64.
  HypotheticalRpf hyp(std::move(states), /*t_eval=*/1'000.0);

  EXPECT_DOUBLE_EQ(hyp.MaxAchievable(0), hyp.grid_point(0));
  for (const Utility u : {hyp.grid_point(0), -10.0, 0.0, 0.5, 1.0}) {
    const MHz w = hyp.SpeedFor(0, u);
    EXPECT_TRUE(std::isfinite(w)) << "u=" << u;
    EXPECT_GE(w, 0.0) << "u=" << u;
    // Saturated at u_max: every target costs the same flat-out speed.
    EXPECT_DOUBLE_EQ(w, hyp.SpeedFor(0, hyp.grid_point(0))) << "u=" << u;
  }
  const auto outcomes = hyp.Evaluate(10'000.0);
  EXPECT_TRUE(std::isfinite(outcomes[0].speed));
  EXPECT_TRUE(std::isfinite(outcomes[0].utility));
  EXPECT_LE(outcomes[0].utility, hyp.grid_point(0) + 1e-9);
}

TEST(HypotheticalRpfTest, AggregateAllocationForSumsJobSpeeds) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 2'000.0, 0.0);
  EXPECT_NEAR(hyp.AggregateAllocationFor(0.5),
              hyp.SpeedFor(0, 0.5) + hyp.SpeedFor(1, 0.5), 1e-9);
}

TEST(HypotheticalRpfTest, RowAggregatesMonotone) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 1'000.0, 200.0);
  for (int i = 1; i < hyp.grid_size(); ++i) {
    EXPECT_GE(hyp.RowAggregate(i), hyp.RowAggregate(i - 1) - 1e-9);
  }
}

TEST(HypotheticalRpfTest, AbundantCapacityGivesEveryoneMax) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 2'000.0, 0.0);
  const auto outcomes = hyp.Evaluate(1'000'000.0);
  EXPECT_NEAR(outcomes[0].utility, 0.8, 1e-6);
  EXPECT_NEAR(outcomes[1].utility, 0.6875, 1e-6);
}

TEST(HypotheticalRpfTest, ZeroAggregateGivesFloorUtilities) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 2'000.0, 0.0);
  const auto outcomes = hyp.Evaluate(0.0);
  EXPECT_LE(outcomes[0].utility, kUtilityFloor + 1.0);
  EXPECT_DOUBLE_EQ(outcomes[0].speed, 0.0);
}

TEST(HypotheticalRpfTest, MoreAggregateNeverHurtsAnyJob) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(3.0, 1'500.0, 500.0);
  std::vector<double> prev = {kUtilityFloor - 1.0, kUtilityFloor - 1.0};
  for (MHz w = 0.0; w <= 2'000.0; w += 50.0) {
    const auto outcomes = hyp.Evaluate(w);
    for (std::size_t m = 0; m < outcomes.size(); ++m) {
      EXPECT_GE(outcomes[m].utility, prev[m] - 1e-9)
          << "job " << m << " at aggregate " << w;
      prev[m] = outcomes[m].utility;
    }
  }
}

TEST(HypotheticalRpfTest, StartDelayLowersAchievable) {
  Example43Cycle2 ex;
  JobGoal g2 = JobGoal::FromFactor(1.0, 4.0, 4.0);
  std::vector<HypotheticalJobState> with_delay = {{&ex.j2, g2, 0.0, 2.0}};
  std::vector<HypotheticalJobState> without = {{&ex.j2, g2, 0.0, 0.0}};
  HypotheticalRpf delayed(std::move(with_delay), 2.0);
  HypotheticalRpf prompt(std::move(without), 2.0);
  EXPECT_LT(delayed.MaxAchievable(0), prompt.MaxAchievable(0));
}

TEST(HypotheticalRpfTest, MinAndAverageUtility) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(3.0, 2'000.0, 0.0);
  const auto outcomes = hyp.Evaluate(1'000.0);
  EXPECT_DOUBLE_EQ(
      hyp.MinUtility(1'000.0),
      std::min(outcomes[0].utility, outcomes[1].utility));
  EXPECT_NEAR(hyp.AverageUtility(1'000.0),
              (outcomes[0].utility + outcomes[1].utility) / 2.0, 1e-12);
}

TEST(HypotheticalRpfTest, CompletedJobRejected) {
  JobProfile p = JobProfile::SingleStage(100.0, 100.0, 1.0);
  JobGoal g = JobGoal::FromFactor(0.0, 2.0, 1.0);
  std::vector<HypotheticalJobState> states = {{&p, g, 100.0, 0.0}};
  EXPECT_THROW(HypotheticalRpf(std::move(states), 0.0), std::logic_error);
}

TEST(HypotheticalRpfTest, GridMustEndAtOne) {
  JobProfile p = JobProfile::SingleStage(100.0, 100.0, 1.0);
  JobGoal g = JobGoal::FromFactor(0.0, 2.0, 1.0);
  std::vector<HypotheticalJobState> states = {{&p, g, 0.0, 0.0}};
  const std::vector<double> bad_grid = {-1.0, 0.0, 0.5};
  EXPECT_THROW(HypotheticalRpf(states, 0.0, bad_grid), std::logic_error);
}

TEST(HypotheticalRpfTest, UniformGridShape) {
  const auto grid = HypotheticalRpf::UniformGrid(8);
  EXPECT_EQ(grid.size(), 8u);
  EXPECT_DOUBLE_EQ(grid.front(), kUtilityFloor);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(HypotheticalRpfTest, DefaultGridValid) {
  const auto grid = HypotheticalRpf::DefaultGrid();
  EXPECT_GT(grid.size(), 10u);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
}

TEST(BatchAggregateRpfTest, AdapterDelegates) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 2'000.0, 0.0);
  BatchAggregateRpf rpf(&hyp);
  EXPECT_DOUBLE_EQ(rpf.UtilityAt(1'000.0), hyp.LevelFor(1'000.0));
  EXPECT_DOUBLE_EQ(rpf.AllocationFor(0.5), hyp.AggregateAllocationFor(0.5));
  EXPECT_DOUBLE_EQ(rpf.saturation_allocation(),
                   hyp.RowAggregate(hyp.grid_size() - 1));
  EXPECT_DOUBLE_EQ(rpf.max_utility(), 1.0);  // the grid's top level
}

TEST(HypotheticalRpfTest, LevelForInvertsAggregateCurve) {
  Example43Cycle2 ex;
  auto hyp = ex.Make(4.0, 1'500.0, 500.0);
  for (Utility u : {-1.0, 0.0, 0.3, 0.5, 0.65}) {
    const MHz agg = hyp.AggregateAllocationFor(u);
    // Round trip within the grid's interpolation error.
    EXPECT_NEAR(hyp.LevelFor(agg), u, 0.05) << "u=" << u;
  }
  EXPECT_DOUBLE_EQ(hyp.LevelFor(0.0), kUtilityFloor);
  EXPECT_DOUBLE_EQ(hyp.LevelFor(1e9), 1.0);
}

TEST(HypotheticalRpfTest, MultiStageSpeedInversion) {
  // A two-stage job: 1,000 Mc at up to 1,000 MHz then 2,000 Mc at up to
  // 500 MHz. Required speeds must respect the per-stage caps via the
  // time-at-speed inversion, not a naive remaining/budget division.
  JobProfile profile({JobStage{1'000.0, 1'000.0, 0.0, 100.0},
                      JobStage{2'000.0, 500.0, 0.0, 100.0}});
  JobGoal goal = JobGoal::FromFactor(0.0, 3.0, profile.min_execution_time());
  std::vector<HypotheticalJobState> states = {{&profile, goal, 0.0, 0.0}};
  HypotheticalRpf hyp(std::move(states), 0.0);
  // Goal 15 s; u = 0 → budget 15 s: below both caps, ω = 3,000/15 = 200.
  EXPECT_NEAR(hyp.SpeedFor(0, 0.0), 200.0, 1.0);
  // Budget 5.5 s (u = 9.5/15): stage 2 pins at its 500 MHz cap (4 s),
  // leaving 1.5 s for stage 1 → ω = 1,000/1.5 ≈ 666.7 MHz.
  EXPECT_NEAR(hyp.SpeedFor(0, 9.5 / 15.0), 1'000.0 / 1.5, 2.0);
  // u_max: min time 1 + 4 = 5 → (15 − 5)/15 = 2/3.
  EXPECT_NEAR(hyp.MaxAchievable(0), 2.0 / 3.0, 1e-9);
}

TEST(HypotheticalRpfTest, MultiStageProgressRespectsStageBoundaries) {
  JobProfile profile({JobStage{1'000.0, 1'000.0, 0.0, 100.0},
                      JobStage{2'000.0, 500.0, 0.0, 100.0}});
  JobGoal goal = JobGoal::FromFactor(0.0, 3.0, profile.min_execution_time());
  // Mid-stage-2 progress: only the slow stage remains; required speeds are
  // capped at 500 MHz no matter how tight the target.
  std::vector<HypotheticalJobState> states = {{&profile, goal, 1'500.0, 0.0}};
  HypotheticalRpf hyp(std::move(states), 0.0);
  for (int i = 0; i < hyp.grid_size(); ++i) {
    EXPECT_LE(hyp.W(i, 0), 500.0 + 1e-6) << "grid point " << i;
  }
}

TEST(HypotheticalRpfTest, MixedStageJobsAggregateConsistently) {
  JobProfile single = JobProfile::SingleStage(4'000.0, 1'000.0, 100.0);
  JobProfile staged({JobStage{1'000.0, 1'000.0, 0.0, 100.0},
                     JobStage{2'000.0, 500.0, 0.0, 100.0}});
  JobGoal g1 = JobGoal::FromFactor(0.0, 4.0, single.min_execution_time());
  JobGoal g2 = JobGoal::FromFactor(0.0, 4.0, staged.min_execution_time());
  std::vector<HypotheticalJobState> states = {{&single, g1, 0.0, 0.0},
                                              {&staged, g2, 0.0, 0.0}};
  HypotheticalRpf hyp(std::move(states), 0.0);
  // Aggregate rows remain monotone and Evaluate splits them exactly.
  for (MHz w : {100.0, 400.0, 800.0, 1'200.0}) {
    const auto outcomes = hyp.Evaluate(w);
    EXPECT_NEAR(outcomes[0].speed + outcomes[1].speed, std::min(w,
                hyp.RowAggregate(hyp.grid_size() - 1)), 1e-6);
  }
}

class HypotheticalGridResolution : public ::testing::TestWithParam<int> {};

TEST_P(HypotheticalGridResolution, CoarseGridsStayConsistent) {
  // Property: for any grid resolution R, per-job utilities remain monotone
  // in the aggregate and clamped at u_max — the approximation degrades
  // smoothly (the paper's "R is a small constant").
  Example43Cycle2 ex;
  JobGoal g2 = JobGoal::FromFactor(1.0, 3.0, 4.0);
  std::vector<HypotheticalJobState> states = {
      {&ex.j1, ex.g1, 1'500.0, 0.0},
      {&ex.j2, g2, 500.0, 0.0},
  };
  const auto grid = HypotheticalRpf::UniformGrid(GetParam());
  HypotheticalRpf hyp(std::move(states), 2.0, grid);
  double prev_min = -1e9;
  for (MHz w = 0.0; w <= 1'600.0; w += 100.0) {
    const auto outcomes = hyp.Evaluate(w);
    const double mn = std::min(outcomes[0].utility, outcomes[1].utility);
    EXPECT_GE(mn, prev_min - 1e-9);
    prev_min = mn;
    EXPECT_LE(outcomes[0].utility, hyp.MaxAchievable(0) + 1e-9);
    EXPECT_LE(outcomes[1].utility, hyp.MaxAchievable(1) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(GridSweep, HypotheticalGridResolution,
                         ::testing::Values(3, 4, 6, 10, 16, 32, 64));

}  // namespace
}  // namespace mwp

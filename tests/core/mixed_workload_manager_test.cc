#include "core/mixed_workload_manager.h"

#include <gtest/gtest.h>

#include "web/workload_generator.h"

namespace mwp {
namespace {

ApcController::Config FastConfig() {
  ApcController::Config cfg;
  cfg.control_cycle = 10.0;
  cfg.costs = VmCostModel::Free();
  return cfg;
}

ClusterSpec SmallCluster() {
  return ClusterSpec::Uniform(2, NodeSpec{2, 1'000.0, 8'192.0});
}

TEST(MixedWorkloadManagerTest, RunsJobsEndToEnd) {
  MixedWorkloadManager mgr(SmallCluster(), FastConfig());
  Simulation sim;
  mgr.Start(sim);
  const AppId id = mgr.SubmitJob(
      sim, "etl", JobProfile::SingleStage(20'000.0, 2'000.0, 1'024.0), 3.0);
  sim.RunUntil(100.0);
  mgr.Finish(sim);
  const Job* job = mgr.jobs().Find(id);
  ASSERT_NE(job, nullptr);
  EXPECT_TRUE(job->completed());
  EXPECT_EQ(mgr.Outcomes().size(), 1u);
}

TEST(MixedWorkloadManagerTest, ProfiledResubmissionUsesHistory) {
  MixedWorkloadManager mgr(SmallCluster(), FastConfig());
  Simulation sim;
  mgr.Start(sim);
  // Unknown class: no estimate yet.
  EXPECT_FALSE(mgr.SubmitProfiledJob(sim, "nightly", 3.0).has_value());

  mgr.SubmitJob(sim, "nightly",
                JobProfile::SingleStage(10'000.0, 1'000.0, 512.0), 3.0);
  sim.RunUntil(60.0);
  mgr.Finish(sim);
  ASSERT_EQ(mgr.job_profiler().ObservationCount("nightly"), 1u);

  // Second submission of the class needs no explicit profile.
  const auto id = mgr.SubmitProfiledJob(sim, "nightly", 3.0);
  ASSERT_TRUE(id.has_value());
  const Job* job = mgr.jobs().Find(*id);
  ASSERT_NE(job, nullptr);
  EXPECT_DOUBLE_EQ(job->profile().total_work(), 10'000.0);
  sim.RunUntil(150.0);
  mgr.Finish(sim);
  EXPECT_TRUE(mgr.jobs().Find(*id)->completed());
  EXPECT_EQ(mgr.job_profiler().ObservationCount("nightly"), 2u);
}

TEST(MixedWorkloadManagerTest, WebAndBatchCoexist) {
  MixedWorkloadManager mgr(SmallCluster(), FastConfig());
  Simulation sim;
  TransactionalAppSpec web;
  web.id = 1'000;
  web.name = "web";
  web.memory_per_instance = 256.0;
  web.response_time_goal = 1.0;
  web.demand_per_request = 4.0;
  web.min_response_time = 0.2;
  web.saturation_allocation = 2'000.0;
  mgr.AddWebApplication(web, std::make_shared<ConstantRate>(300.0));
  mgr.Start(sim);
  mgr.SubmitJob(sim, "batch",
                JobProfile::SingleStage(40'000.0, 2'000.0, 1'024.0), 3.0);
  sim.RunUntil(200.0);
  mgr.Finish(sim);
  EXPECT_EQ(mgr.Outcomes().size(), 1u);
  const auto& cycles = mgr.controller().cycles();
  ASSERT_FALSE(cycles.empty());
  EXPECT_GT(cycles.back().tx_allocations.at(0), 0.0);
}

TEST(MixedWorkloadManagerTest, GoalFactorAppliedFromSubmissionTime) {
  MixedWorkloadManager mgr(SmallCluster(), FastConfig());
  Simulation sim;
  mgr.Start(sim);
  sim.RunUntil(50.0);
  const AppId id = mgr.SubmitJob(
      sim, "late", JobProfile::SingleStage(10'000.0, 1'000.0, 512.0), 2.0);
  const Job* job = mgr.jobs().Find(id);
  ASSERT_NE(job, nullptr);
  EXPECT_DOUBLE_EQ(job->goal().submit_time, 50.0);
  EXPECT_DOUBLE_EQ(job->goal().completion_goal, 50.0 + 2.0 * 10.0);
}

}  // namespace
}  // namespace mwp

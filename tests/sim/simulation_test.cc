#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace mwp {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, EventsExecuteInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&](Simulation&) { order.push_back(3); });
  sim.ScheduleAt(1.0, [&](Simulation&) { order.push_back(1); });
  sim.ScheduleAt(2.0, [&](Simulation&) { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(5.0, [&](Simulation&) { order.push_back(1); });
  sim.ScheduleAt(5.0, [&](Simulation&) { order.push_back(2); });
  sim.ScheduleAt(5.0, [&](Simulation&) { order.push_back(3); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, ClockShowsEventTimeDuringExecution) {
  Simulation sim;
  double seen = -1.0;
  sim.ScheduleAt(7.5, [&](Simulation& s) { seen = s.now(); });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  double fired_at = -1.0;
  sim.ScheduleAt(10.0, [&](Simulation& s) {
    s.ScheduleAfter(5.0, [&](Simulation& inner) { fired_at = inner.now(); });
  });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(SimulationTest, SchedulingInThePastThrows) {
  Simulation sim;
  sim.ScheduleAt(10.0, [](Simulation& s) {
    EXPECT_THROW(s.ScheduleAt(5.0, [](Simulation&) {}), std::logic_error);
  });
  sim.RunToCompletion();
}

TEST(SimulationTest, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&](Simulation&) { ++fired; });
  sim.ScheduleAt(10.0, [&](Simulation&) { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);  // clock advanced to the horizon
  sim.RunUntil(10.0);                // event at exactly the horizon fires
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  int fired = 0;
  EventHandle h = sim.ScheduleAt(1.0, [&](Simulation&) { ++fired; });
  sim.Cancel(h);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 0);
}

TEST(SimulationTest, CancelAfterFireIsHarmless) {
  Simulation sim;
  int fired = 0;
  EventHandle h = sim.ScheduleAt(1.0, [&](Simulation&) { ++fired; });
  sim.RunToCompletion();
  sim.Cancel(h);
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, PeriodicFiresRepeatedly) {
  Simulation sim;
  std::vector<double> times;
  sim.SchedulePeriodic(0.0, 600.0,
                       [&](Simulation& s) { times.push_back(s.now()); });
  sim.RunUntil(2'400.0);
  // Fires at 0, 600, 1200, 1800, 2400.
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[4], 2'400.0);
}

TEST(SimulationTest, PeriodicCancelStopsChain) {
  Simulation sim;
  int fired = 0;
  EventHandle h =
      sim.SchedulePeriodic(0.0, 1.0, [&](Simulation&) { ++fired; });
  sim.ScheduleAt(2.5, [&, h](Simulation& s) { s.Cancel(h); });
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 3);  // t = 0, 1, 2
}

TEST(SimulationTest, StepExecutesOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&](Simulation&) { ++fired; });
  sim.ScheduleAt(2.0, [&](Simulation&) { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationTest, ExecutedEventsCounter) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(i, [](Simulation&) {});
  }
  sim.RunToCompletion();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(SimulationTest, PeriodicCancelFromInsideOwnCallback) {
  Simulation sim;
  int fired = 0;
  EventHandle h;
  h = sim.SchedulePeriodic(0.0, 1.0, [&](Simulation& s) {
    if (++fired == 2) s.Cancel(h);
  });
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, CancelledEventsDoNotAdvanceClockPastHorizon) {
  Simulation sim;
  EventHandle h = sim.ScheduleAt(50.0, [](Simulation&) {});
  sim.Cancel(h);
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  sim.RunToCompletion();
  // The cancelled event is drained without executing.
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulationTest, TwoPeriodicChainsInterleave) {
  Simulation sim;
  std::vector<int> order;
  sim.SchedulePeriodic(0.0, 2.0, [&](Simulation&) { order.push_back(1); });
  sim.SchedulePeriodic(1.0, 2.0, [&](Simulation&) { order.push_back(2); });
  sim.RunUntil(4.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1}));
}

TEST(SimulationTest, StepRespectsHorizon) {
  Simulation sim;
  sim.ScheduleAt(5.0, [](Simulation&) {});
  EXPECT_FALSE(sim.Step(4.0));
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.Step(5.0));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulationTest, NullCallbackRejected) {
  Simulation sim;
  EXPECT_THROW(sim.ScheduleAt(1.0, nullptr), std::logic_error);
}

TEST(SimulationTest, CancelReleasesClosureImmediately) {
  // Regression: cancellation used to be fully lazy — the std::function sat in
  // the queue until its fire time, pinning captured state over long horizons.
  Simulation sim;
  auto payload = std::make_shared<int>(42);
  EventHandle h = sim.ScheduleAt(1'000'000.0, [payload](Simulation&) {});
  EXPECT_EQ(payload.use_count(), 2);
  sim.Cancel(h);
  EXPECT_EQ(payload.use_count(), 1);  // released at Cancel, not at fire time
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunToCompletion();
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulationTest, CancelPeriodicReleasesClosureImmediately) {
  Simulation sim;
  auto payload = std::make_shared<int>(7);
  EventHandle h =
      sim.SchedulePeriodic(5.0, 10.0, [payload](Simulation&) {});
  sim.Cancel(h);
  EXPECT_EQ(payload.use_count(), 1);
  sim.RunUntil(100.0);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulationTest, CancelPeriodicInsideOwnCallbackReleasesClosure) {
  Simulation sim;
  auto payload = std::make_shared<int>(1);
  int fired = 0;
  EventHandle h;
  h = sim.SchedulePeriodic(0.0, 1.0, [&fired, &h, payload](Simulation& s) {
    if (++fired == 2) s.Cancel(h);
  });
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(payload.use_count(), 1);  // chain torn down, body released
}

TEST(SimulationTest, PendingEventsExcludesCancelled) {
  Simulation sim;
  EventHandle a = sim.ScheduleAt(1.0, [](Simulation&) {});
  sim.ScheduleAt(2.0, [](Simulation&) {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulationTest, EventsCanScheduleCascades) {
  Simulation sim;
  int depth = 0;
  std::function<void(Simulation&)> cascade = [&](Simulation& s) {
    if (++depth < 10) s.ScheduleAfter(1.0, cascade);
  };
  sim.ScheduleAt(0.0, cascade);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

}  // namespace
}  // namespace mwp

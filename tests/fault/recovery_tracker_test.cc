#include "fault/recovery_tracker.h"

#include <gtest/gtest.h>

#include <memory>

#include "fault/fault_injector.h"

namespace mwp {
namespace {

TEST(RecoveryTrackerTest, TracksOutageLifecycle) {
  ClusterSpec cluster = ClusterSpec::Uniform(2, NodeSpec{2, 1'000.0, 4'000.0});
  JobQueue queue;
  JobProfile p = JobProfile::SingleStage(10'000.0, 1'000.0, 500.0);
  Job& job = queue.Submit(std::make_unique<Job>(
      1, "j1", p, JobGoal::FromFactor(0.0, 5.0, p.min_execution_time())));

  FaultPlan plan;
  plan.crashes.push_back({0, 4.0, 0.0});
  FaultInjector injector(&cluster, &queue, plan);
  RecoveryTracker tracker(&cluster);
  injector.AddListener(&tracker);

  Simulation sim;
  job.Place(0, 0.0, 0.0);
  job.SetAllocation(1'000.0);
  // Scheduled before Attach so the advance fires ahead of the tied crash.
  sim.ScheduleAt(4.0, [&](Simulation&) { job.AdvanceTo(0.0, 4.0); });
  injector.Attach(sim);
  sim.RunToCompletion();

  ASSERT_EQ(tracker.outages().size(), 1u);
  const OutageRecord& rec = tracker.outages()[0];
  EXPECT_EQ(rec.node, 0);
  EXPECT_DOUBLE_EQ(rec.crash_time, 4.0);
  EXPECT_EQ(rec.jobs_crashed, 1);
  EXPECT_DOUBLE_EQ(rec.batch_work_lost, 4'000.0);  // no checkpointing
  EXPECT_DOUBLE_EQ(rec.lost_cpu_seconds, 4.0);     // 4,000 Mc at 1,000 MHz/cpu
  EXPECT_FALSE(rec.recovered());
  EXPECT_FALSE(tracker.all_recovered());

  tracker.RecordSlaViolation(5.0);
  tracker.RecordSlaViolation(6.0);
  tracker.MarkRecovered(0, 7.0);
  tracker.RecordSlaViolation(8.0);  // after recovery: not counted

  EXPECT_TRUE(tracker.all_recovered());
  EXPECT_DOUBLE_EQ(tracker.outages()[0].time_to_recover(), 3.0);
  EXPECT_EQ(tracker.total_sla_violations(), 2);
  EXPECT_DOUBLE_EQ(tracker.TimeToRecoverStats().mean(), 3.0);
  EXPECT_DOUBLE_EQ(tracker.total_work_lost(), 4'000.0);
  EXPECT_DOUBLE_EQ(tracker.total_lost_cpu_seconds(), 4.0);
}

TEST(RecoveryTrackerTest, MarkRecoveredWithoutOutageIsNoop) {
  const ClusterSpec cluster = ClusterSpec::Uniform(1, NodeSpec{1, 1'000.0, 1'000.0});
  RecoveryTracker tracker(&cluster);
  tracker.MarkRecovered(0, 1.0);  // nothing open: ignored
  EXPECT_TRUE(tracker.outages().empty());
  EXPECT_TRUE(tracker.all_recovered());
}

}  // namespace
}  // namespace mwp

#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <memory>

#include "fault/fault_plan.h"

namespace mwp {
namespace {

ClusterSpec TwoNodes() {
  return ClusterSpec::Uniform(2, NodeSpec{1, 1'000.0, 2'000.0});
}

Job& SubmitJob(JobQueue& queue, AppId id, Megacycles work = 4'000.0) {
  JobProfile p = JobProfile::SingleStage(work, 1'000.0, 750.0);
  return queue.Submit(std::make_unique<Job>(
      id, "j" + std::to_string(id), p,
      JobGoal::FromFactor(0.0, 5.0, p.min_execution_time())));
}

TEST(FaultPlanTest, ValidateRejectsBadEntries) {
  const ClusterSpec cluster = TwoNodes();
  FaultPlan plan;
  plan.crashes.push_back({5, 10.0, 0.0});  // node 5 does not exist
  EXPECT_THROW(plan.Validate(cluster), std::logic_error);

  plan.crashes.clear();
  plan.slowdowns.push_back({0, 1.0, 1.5, 10.0});  // factor out of range
  EXPECT_THROW(plan.Validate(cluster), std::logic_error);

  plan.slowdowns.clear();
  plan.vm_operation_failure_rate = 2.0;
  EXPECT_THROW(plan.Validate(cluster), std::logic_error);
}

TEST(FaultInjectorTest, CrashTakesNodeOfflineAndKillsJobs) {
  ClusterSpec cluster = TwoNodes();
  JobQueue queue;
  Job& job = SubmitJob(queue, 1);
  job.set_checkpoint_interval(1.0);

  FaultPlan plan;
  plan.crashes.push_back({0, 2.5, 0.0});
  FaultInjector injector(&cluster, &queue, plan);

  Simulation sim;
  job.Place(0, 0.0, 0.0);
  job.SetAllocation(1'000.0);
  // The controller would normally advance jobs; do it from an event at the
  // crash instant, scheduled before Attach so it fires first (insertion
  // order breaks the tie) and the rollback is observable.
  sim.ScheduleAt(2.5, [&](Simulation&) { job.AdvanceTo(0.0, 2.5); });
  injector.Attach(sim);
  sim.RunToCompletion();

  EXPECT_FALSE(cluster.node_online(0));
  EXPECT_TRUE(cluster.node_online(1));
  EXPECT_EQ(job.status(), JobStatus::kNotStarted);
  EXPECT_DOUBLE_EQ(job.work_done(), 2'000.0);  // rolled back to t=2 checkpoint
  EXPECT_EQ(injector.num_crashes_fired(), 1);
  EXPECT_DOUBLE_EQ(injector.total_work_lost(), 500.0);
  ASSERT_EQ(injector.trace().size(), 1u);
  EXPECT_NE(injector.trace()[0].find("crash node=0"), std::string::npos);
}

TEST(FaultInjectorTest, SuspendedJobsSurviveCrash) {
  ClusterSpec cluster = TwoNodes();
  JobQueue queue;
  Job& job = SubmitJob(queue, 1);
  job.Place(0, 0.0, 0.0);
  job.SetAllocation(1'000.0);
  job.AdvanceTo(0.0, 1.0);
  job.Suspend(1.0);

  FaultPlan plan;
  plan.crashes.push_back({0, 2.0, 0.0});
  FaultInjector injector(&cluster, &queue, plan);
  Simulation sim;
  injector.Attach(sim);
  sim.RunToCompletion();

  EXPECT_EQ(job.status(), JobStatus::kSuspended);
  EXPECT_DOUBLE_EQ(job.work_done(), 1'000.0);
  EXPECT_DOUBLE_EQ(injector.total_work_lost(), 0.0);
}

TEST(FaultInjectorTest, RestoreBringsNodeBack) {
  ClusterSpec cluster = TwoNodes();
  JobQueue queue;
  FaultPlan plan;
  plan.crashes.push_back({1, 5.0, 10.0});
  FaultInjector injector(&cluster, &queue, plan);
  Simulation sim;
  injector.Attach(sim);

  sim.RunUntil(5.0);
  EXPECT_FALSE(cluster.node_online(1));
  sim.RunUntil(14.9);
  EXPECT_FALSE(cluster.node_online(1));
  sim.RunUntil(15.0);
  EXPECT_TRUE(cluster.node_online(1));
  ASSERT_EQ(injector.trace().size(), 2u);
  EXPECT_NE(injector.trace()[1].find("restore node=1"), std::string::npos);
}

TEST(FaultInjectorTest, SlowdownDegradesThenLifts) {
  ClusterSpec cluster = TwoNodes();
  JobQueue queue;
  FaultPlan plan;
  plan.slowdowns.push_back({0, 2.0, 0.25, 3.0});
  FaultInjector injector(&cluster, &queue, plan);
  Simulation sim;
  injector.Attach(sim);

  sim.RunUntil(2.0);
  EXPECT_EQ(cluster.node_state(0), NodeState::kDegraded);
  EXPECT_DOUBLE_EQ(cluster.available_cpu(0), 250.0);
  sim.RunUntil(5.0);
  EXPECT_EQ(cluster.node_state(0), NodeState::kOnline);
  EXPECT_DOUBLE_EQ(cluster.available_cpu(0), 1'000.0);
}

TEST(FaultInjectorTest, SlowdownOnCrashedNodeIsDropped) {
  ClusterSpec cluster = TwoNodes();
  JobQueue queue;
  FaultPlan plan;
  plan.crashes.push_back({0, 1.0, 0.0});
  plan.slowdowns.push_back({0, 2.0, 0.5, 5.0});
  FaultInjector injector(&cluster, &queue, plan);
  Simulation sim;
  injector.Attach(sim);
  sim.RunToCompletion();
  EXPECT_EQ(cluster.node_state(0), NodeState::kOffline);
  EXPECT_EQ(injector.trace().size(), 1u);  // only the crash was recorded
}

struct RecordingListener : FaultListener {
  std::vector<std::string> events;
  void OnNodeCrashed(Simulation& sim, const NodeCrashReport& r) override {
    events.push_back("crash@" + std::to_string(sim.now()) + " node " +
                     std::to_string(r.node));
  }
  void OnNodeRestored(Simulation& sim, NodeId node) override {
    events.push_back("restore@" + std::to_string(sim.now()) + " node " +
                     std::to_string(node));
  }
};

TEST(FaultInjectorTest, ListenersSeeClusterStateAlreadyUpdated) {
  ClusterSpec cluster = TwoNodes();
  JobQueue queue;
  FaultPlan plan;
  plan.crashes.push_back({0, 3.0, 4.0});
  FaultInjector injector(&cluster, &queue, plan);

  struct StateProbe : FaultListener {
    const ClusterSpec* cluster;
    bool offline_at_crash = false;
    bool online_at_restore = false;
    void OnNodeCrashed(Simulation&, const NodeCrashReport& r) override {
      offline_at_crash = !cluster->node_online(r.node);
    }
    void OnNodeRestored(Simulation&, NodeId node) override {
      online_at_restore = cluster->node_online(node);
    }
  } probe;
  probe.cluster = &cluster;
  injector.AddListener(&probe);

  Simulation sim;
  injector.Attach(sim);
  sim.RunToCompletion();
  EXPECT_TRUE(probe.offline_at_crash);
  EXPECT_TRUE(probe.online_at_restore);
}

TEST(FaultInjectorTest, DeterministicTraceAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    ClusterSpec cluster = TwoNodes();
    JobQueue queue;
    Job& job = SubmitJob(queue, 1);
    FaultPlan plan;
    plan.seed = seed;
    plan.crashes.push_back({0, 2.0, 5.0});
    plan.slowdowns.push_back({1, 3.0, 0.5, 2.0});
    plan.vm_operation_failure_rate = 0.5;
    FaultInjector injector(&cluster, &queue, plan);
    Simulation sim;
    injector.Attach(sim);
    job.Place(0, 0.0, 0.0);
    job.SetAllocation(500.0);
    sim.RunToCompletion();
    for (int i = 0; i < 8; ++i) {
      injector.ShouldFailOperation(PlacementChange::Kind::kStart, 42);
    }
    return injector.trace();
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a, b);
  // A different seed changes the operation-failure pattern (with rate 0.5
  // over 8 draws, identical traces are overwhelmingly unlikely).
  const auto c = run(1234567);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, OperationOracleOnlyFailsStartResumeMigrate) {
  ClusterSpec cluster = TwoNodes();
  JobQueue queue;
  FaultPlan plan;
  plan.vm_operation_failure_rate = 1.0;  // every eligible op fails
  FaultInjector injector(&cluster, &queue, plan);
  EXPECT_TRUE(injector.ShouldFailOperation(PlacementChange::Kind::kStart, 1));
  EXPECT_TRUE(injector.ShouldFailOperation(PlacementChange::Kind::kResume, 1));
  EXPECT_TRUE(injector.ShouldFailOperation(PlacementChange::Kind::kMigrate, 1));
  EXPECT_FALSE(injector.ShouldFailOperation(PlacementChange::Kind::kStop, 1));
  EXPECT_FALSE(injector.ShouldFailOperation(PlacementChange::Kind::kSuspend, 1));
  EXPECT_EQ(injector.num_operations_failed(), 3);
}

}  // namespace
}  // namespace mwp

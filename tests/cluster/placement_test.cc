#include "cluster/placement.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

TEST(PlacementMatrixTest, DefaultsToZero) {
  PlacementMatrix p(3, 4);
  for (int m = 0; m < 3; ++m) {
    for (int n = 0; n < 4; ++n) EXPECT_EQ(p.at(m, n), 0);
  }
  EXPECT_EQ(p.InstanceCount(0), 0);
  EXPECT_FALSE(p.IsPlaced(0));
}

TEST(PlacementMatrixTest, CountsAndViews) {
  PlacementMatrix p(2, 3);
  p.at(0, 1) = 1;
  p.at(0, 2) = 2;
  p.at(1, 2) = 1;
  EXPECT_EQ(p.InstanceCount(0), 3);
  EXPECT_EQ(p.InstanceCount(1), 1);
  EXPECT_EQ(p.InstancesOnNode(2), 3);
  EXPECT_TRUE(p.IsPlaced(0));
  EXPECT_EQ(p.NodesOf(0), (std::vector<int>{1, 2}));
}

TEST(PlacementMatrixTest, OutOfBoundsThrows) {
  PlacementMatrix p(2, 2);
  EXPECT_THROW(p.at(2, 0), std::logic_error);
  EXPECT_THROW(p.at(0, 2), std::logic_error);
  EXPECT_THROW(p.at(-1, 0), std::logic_error);
}

TEST(PlacementMatrixTest, EqualityIsStructural) {
  PlacementMatrix a(2, 2), b(2, 2);
  EXPECT_EQ(a, b);
  a.at(1, 1) = 1;
  EXPECT_NE(a, b);
  b.at(1, 1) = 1;
  EXPECT_EQ(a, b);
}

TEST(LoadMatrixTest, AllocationSums) {
  LoadMatrix l(2, 3);
  l.at(0, 0) = 500.0;
  l.at(0, 2) = 250.0;
  l.at(1, 2) = 1'000.0;
  EXPECT_DOUBLE_EQ(l.AppAllocation(0), 750.0);
  EXPECT_DOUBLE_EQ(l.NodeLoad(2), 1'250.0);
  EXPECT_DOUBLE_EQ(l.NodeLoad(1), 0.0);
}

TEST(DiffPlacementsTest, PureStart) {
  PlacementMatrix from(1, 2), to(1, 2);
  to.at(0, 1) = 1;
  const auto changes = DiffPlacements(from, to);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, PlacementChange::Kind::kStart);
  EXPECT_EQ(changes[0].app, 0);
  EXPECT_EQ(changes[0].to_node, 1);
}

TEST(DiffPlacementsTest, PureStop) {
  PlacementMatrix from(1, 2), to(1, 2);
  from.at(0, 0) = 1;
  const auto changes = DiffPlacements(from, to);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, PlacementChange::Kind::kStop);
  EXPECT_EQ(changes[0].from_node, 0);
}

TEST(DiffPlacementsTest, MoveBecomesMigration) {
  PlacementMatrix from(1, 3), to(1, 3);
  from.at(0, 0) = 1;
  to.at(0, 2) = 1;
  const auto changes = DiffPlacements(from, to);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, PlacementChange::Kind::kMigrate);
  EXPECT_EQ(changes[0].from_node, 0);
  EXPECT_EQ(changes[0].to_node, 2);
}

TEST(DiffPlacementsTest, SuspendAndResumeClassification) {
  PlacementMatrix from(2, 2), to(2, 2);
  from.at(0, 0) = 1;  // app 0 removed -> suspend
  to.at(1, 1) = 1;    // app 1 added -> resume
  std::vector<bool> removal_is_suspend{true, false};
  std::vector<bool> addition_is_resume{false, true};
  const auto changes =
      DiffPlacements(from, to, removal_is_suspend, addition_is_resume);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].kind, PlacementChange::Kind::kSuspend);
  EXPECT_EQ(changes[1].kind, PlacementChange::Kind::kResume);
}

TEST(DiffPlacementsTest, UnchangedPlacementNoChanges) {
  PlacementMatrix p(3, 3);
  p.at(0, 0) = 1;
  p.at(2, 1) = 1;
  EXPECT_TRUE(DiffPlacements(p, p).empty());
}

TEST(DiffPlacementsTest, MultiInstanceDeltas) {
  PlacementMatrix from(1, 2), to(1, 2);
  from.at(0, 0) = 2;
  to.at(0, 0) = 1;
  to.at(0, 1) = 2;
  // Net: one instance moves 0 -> 1 (migration), one new instance on 1.
  const auto changes = DiffPlacements(from, to);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].kind, PlacementChange::Kind::kMigrate);
  EXPECT_EQ(changes[1].kind, PlacementChange::Kind::kStart);
}

TEST(PlacementChangeTest, KindNames) {
  EXPECT_STREQ(ToString(PlacementChange::Kind::kStart), "start");
  EXPECT_STREQ(ToString(PlacementChange::Kind::kSuspend), "suspend");
  EXPECT_STREQ(ToString(PlacementChange::Kind::kMigrate), "migrate");
}

}  // namespace
}  // namespace mwp

// Property tests: DiffPlacements must be a faithful delta encoding —
// applying the change list to the source placement reproduces the target,
// with migrations never synthesized out of thin air.
#include <gtest/gtest.h>

#include "cluster/placement.h"
#include "common/rng.h"

namespace mwp {
namespace {

PlacementMatrix RandomPlacement(Rng& rng, int apps, int nodes,
                                bool single_instance_jobs) {
  PlacementMatrix p(apps, nodes);
  for (int m = 0; m < apps; ++m) {
    if (single_instance_jobs) {
      if (rng.Uniform01() < 0.6) {
        p.at(m, static_cast<int>(rng.UniformInt(0, nodes - 1))) = 1;
      }
    } else {
      const int instances = static_cast<int>(rng.UniformInt(0, 3));
      for (int k = 0; k < instances; ++k) {
        p.at(m, static_cast<int>(rng.UniformInt(0, nodes - 1))) += 1;
      }
    }
  }
  return p;
}

PlacementMatrix Apply(const PlacementMatrix& from,
                      const std::vector<PlacementChange>& changes) {
  PlacementMatrix result = from;
  for (const PlacementChange& ch : changes) {
    switch (ch.kind) {
      case PlacementChange::Kind::kStart:
      case PlacementChange::Kind::kResume:
        result.at(ch.app, ch.to_node) += 1;
        break;
      case PlacementChange::Kind::kStop:
      case PlacementChange::Kind::kSuspend:
        result.at(ch.app, ch.from_node) -= 1;
        break;
      case PlacementChange::Kind::kMigrate:
        result.at(ch.app, ch.from_node) -= 1;
        result.at(ch.app, ch.to_node) += 1;
        break;
    }
  }
  return result;
}

class DiffRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DiffRoundTrip, ApplyingChangesReproducesTarget) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 25; ++trial) {
    const int apps = static_cast<int>(rng.UniformInt(1, 6));
    const int nodes = static_cast<int>(rng.UniformInt(1, 5));
    const bool jobs = rng.Uniform01() < 0.5;
    const PlacementMatrix from = RandomPlacement(rng, apps, nodes, jobs);
    const PlacementMatrix to = RandomPlacement(rng, apps, nodes, jobs);
    const auto changes = DiffPlacements(from, to);
    EXPECT_EQ(Apply(from, changes), to)
        << "seed " << GetParam() << " trial " << trial;
  }
}

TEST_P(DiffRoundTrip, MigrationsPreserveInstanceCounts) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1'000);
  for (int trial = 0; trial < 25; ++trial) {
    const int apps = static_cast<int>(rng.UniformInt(1, 6));
    const int nodes = static_cast<int>(rng.UniformInt(2, 5));
    const PlacementMatrix from = RandomPlacement(rng, apps, nodes, false);
    const PlacementMatrix to = RandomPlacement(rng, apps, nodes, false);
    for (const PlacementChange& ch : DiffPlacements(from, to)) {
      if (ch.kind == PlacementChange::Kind::kMigrate) {
        // A migration must connect two distinct, valid nodes of one app
        // whose total count did not shrink below the number it moves.
        EXPECT_NE(ch.from_node, ch.to_node);
        EXPECT_GE(ch.from_node, 0);
        EXPECT_GE(ch.to_node, 0);
        EXPECT_GT(from.at(ch.app, ch.from_node), 0);
      }
    }
  }
}

TEST_P(DiffRoundTrip, ChangeCountIsMinimalPerApp) {
  // For each app the number of changes equals
  // max(removals, additions) across nodes — removals and additions pair
  // into migrations first.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2'000);
  for (int trial = 0; trial < 25; ++trial) {
    const int apps = static_cast<int>(rng.UniformInt(1, 4));
    const int nodes = static_cast<int>(rng.UniformInt(1, 4));
    const PlacementMatrix from = RandomPlacement(rng, apps, nodes, false);
    const PlacementMatrix to = RandomPlacement(rng, apps, nodes, false);
    std::vector<int> per_app(static_cast<std::size_t>(apps), 0);
    for (const PlacementChange& ch : DiffPlacements(from, to)) {
      ++per_app[static_cast<std::size_t>(ch.app)];
    }
    for (int m = 0; m < apps; ++m) {
      int removed = 0, added = 0;
      for (int n = 0; n < nodes; ++n) {
        const int d = to.at(m, n) - from.at(m, n);
        if (d < 0) removed -= d;
        if (d > 0) added += d;
      }
      EXPECT_EQ(per_app[static_cast<std::size_t>(m)], std::max(removed, added))
          << "app " << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffRoundTrip, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mwp

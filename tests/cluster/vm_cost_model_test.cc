#include "cluster/vm_cost_model.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

TEST(VmCostModelTest, PaperMeasuredConstants) {
  const VmCostModel m = VmCostModel::PaperMeasured();
  // §5: Suspend = footprint * 0.0353 s, Resume = * 0.0333 s,
  // Migrate = * 0.0132 s, boot 3.6 s.
  EXPECT_NEAR(m.SuspendCost(1'000.0), 35.3, 1e-9);
  EXPECT_NEAR(m.ResumeCost(1'000.0), 33.3, 1e-9);
  EXPECT_NEAR(m.MigrateCost(1'000.0), 13.2, 1e-9);
  EXPECT_DOUBLE_EQ(m.BootCost(), 3.6);
}

TEST(VmCostModelTest, ExperimentOneJobFootprint) {
  // The 4,320 MB job of Table 2: suspending costs ~152.5 s.
  const VmCostModel m = VmCostModel::PaperMeasured();
  EXPECT_NEAR(m.SuspendCost(4'320.0), 152.496, 1e-3);
  EXPECT_NEAR(m.ResumeCost(4'320.0), 143.856, 1e-3);
  EXPECT_NEAR(m.MigrateCost(4'320.0), 57.024, 1e-3);
}

TEST(VmCostModelTest, CostsScaleLinearlyWithFootprint) {
  const VmCostModel m = VmCostModel::PaperMeasured();
  EXPECT_DOUBLE_EQ(m.SuspendCost(2'000.0), 2.0 * m.SuspendCost(1'000.0));
  EXPECT_DOUBLE_EQ(m.MigrateCost(500.0), 0.5 * m.MigrateCost(1'000.0));
}

TEST(VmCostModelTest, FreeModelIsZero) {
  const VmCostModel m = VmCostModel::Free();
  EXPECT_DOUBLE_EQ(m.SuspendCost(10'000.0), 0.0);
  EXPECT_DOUBLE_EQ(m.ResumeCost(10'000.0), 0.0);
  EXPECT_DOUBLE_EQ(m.MigrateCost(10'000.0), 0.0);
  EXPECT_DOUBLE_EQ(m.BootCost(), 0.0);
}

TEST(VmCostModelTest, NegativeFootprintThrows) {
  const VmCostModel m = VmCostModel::PaperMeasured();
  EXPECT_THROW(m.SuspendCost(-1.0), std::logic_error);
  EXPECT_THROW(m.ResumeCost(-1.0), std::logic_error);
  EXPECT_THROW(m.MigrateCost(-1.0), std::logic_error);
}

}  // namespace
}  // namespace mwp

#include "cluster/cluster.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

TEST(NodeSpecTest, TotalCpuIsProduct) {
  const NodeSpec n{4, 3'900.0, 16'384.0};
  EXPECT_DOUBLE_EQ(n.total_cpu(), 15'600.0);
}

TEST(ClusterSpecTest, UniformClusterShape) {
  // The paper's testbed: 25 nodes of 4 x 3.9 GHz / 16 GB.
  const ClusterSpec c =
      ClusterSpec::Uniform(25, NodeSpec{4, 3'900.0, 16'384.0});
  EXPECT_EQ(c.num_nodes(), 25);
  EXPECT_DOUBLE_EQ(c.total_cpu(), 390'000.0);
  EXPECT_DOUBLE_EQ(c.total_memory(), 25.0 * 16'384.0);
  EXPECT_DOUBLE_EQ(c.node(7).cpu_speed_mhz, 3'900.0);
}

TEST(ClusterSpecTest, HeterogeneousNodes) {
  const ClusterSpec c({NodeSpec{1, 1'000.0, 2'000.0},
                       NodeSpec{2, 2'000.0, 8'000.0}});
  EXPECT_EQ(c.num_nodes(), 2);
  EXPECT_DOUBLE_EQ(c.node(0).total_cpu(), 1'000.0);
  EXPECT_DOUBLE_EQ(c.node(1).total_cpu(), 4'000.0);
  EXPECT_DOUBLE_EQ(c.total_cpu(), 5'000.0);
}

TEST(ClusterSpecTest, EmptyCluster) {
  const ClusterSpec c;
  EXPECT_EQ(c.num_nodes(), 0);
  EXPECT_DOUBLE_EQ(c.total_cpu(), 0.0);
}

TEST(ClusterSpecTest, OutOfRangeNodeThrows) {
  const ClusterSpec c = ClusterSpec::Uniform(2, NodeSpec{1, 100.0, 100.0});
  EXPECT_THROW(c.node(2), std::logic_error);
  EXPECT_THROW(c.node(-1), std::logic_error);
}

TEST(ClusterSpecTest, ToStringMentionsShape) {
  const ClusterSpec c = ClusterSpec::Uniform(3, NodeSpec{1, 500.0, 1'000.0});
  const std::string s = c.ToString();
  EXPECT_NE(s.find("3 nodes"), std::string::npos);
}

TEST(ClusterHealthTest, NodesStartOnline) {
  const ClusterSpec c = ClusterSpec::Uniform(2, NodeSpec{1, 1'000.0, 2'000.0});
  EXPECT_EQ(c.node_state(0), NodeState::kOnline);
  EXPECT_TRUE(c.node_online(1));
  EXPECT_DOUBLE_EQ(c.node_speed_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(c.available_cpu(0), 1'000.0);
  EXPECT_DOUBLE_EQ(c.available_memory(0), 2'000.0);
  EXPECT_DOUBLE_EQ(c.total_available_cpu(), 2'000.0);
  EXPECT_EQ(c.num_online_nodes(), 2);
}

TEST(ClusterHealthTest, OfflineNodeHasNoCapacity) {
  ClusterSpec c = ClusterSpec::Uniform(3, NodeSpec{2, 1'000.0, 4'000.0});
  c.SetNodeOffline(1);
  EXPECT_EQ(c.node_state(1), NodeState::kOffline);
  EXPECT_FALSE(c.node_online(1));
  EXPECT_DOUBLE_EQ(c.available_cpu(1), 0.0);
  EXPECT_DOUBLE_EQ(c.available_memory(1), 0.0);
  EXPECT_DOUBLE_EQ(c.total_available_cpu(), 4'000.0);
  EXPECT_EQ(c.num_online_nodes(), 2);
  // The nominal spec is untouched.
  EXPECT_DOUBLE_EQ(c.node(1).total_cpu(), 2'000.0);
  EXPECT_DOUBLE_EQ(c.total_cpu(), 6'000.0);
  EXPECT_NE(c.ToString().find("1 offline"), std::string::npos);
}

TEST(ClusterHealthTest, RestoreBringsBackFullCapacity) {
  ClusterSpec c = ClusterSpec::Uniform(2, NodeSpec{1, 1'000.0, 2'000.0});
  c.SetNodeOffline(0);
  c.SetNodeOnline(0);
  EXPECT_EQ(c.node_state(0), NodeState::kOnline);
  EXPECT_DOUBLE_EQ(c.available_cpu(0), 1'000.0);
  EXPECT_DOUBLE_EQ(c.available_memory(0), 2'000.0);
}

TEST(ClusterHealthTest, DegradedNodeScalesCpuOnly) {
  ClusterSpec c = ClusterSpec::Uniform(2, NodeSpec{4, 1'000.0, 8'000.0});
  c.SetNodeDegraded(0, 0.5);
  EXPECT_EQ(c.node_state(0), NodeState::kDegraded);
  EXPECT_TRUE(c.node_online(0));  // degraded is still reachable
  EXPECT_DOUBLE_EQ(c.node_speed_factor(0), 0.5);
  EXPECT_DOUBLE_EQ(c.available_cpu(0), 2'000.0);
  EXPECT_DOUBLE_EQ(c.available_memory(0), 8'000.0);  // memory unaffected
  // Factor 1 means fully healthy again.
  c.SetNodeDegraded(0, 1.0);
  EXPECT_EQ(c.node_state(0), NodeState::kOnline);
}

TEST(ClusterHealthTest, InvalidDegradeFactorThrows) {
  ClusterSpec c = ClusterSpec::Uniform(1, NodeSpec{1, 1'000.0, 2'000.0});
  EXPECT_THROW(c.SetNodeDegraded(0, 0.0), std::logic_error);
  EXPECT_THROW(c.SetNodeDegraded(0, 1.5), std::logic_error);
}

}  // namespace
}  // namespace mwp

#include "rpf/piecewise_linear.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

PiecewiseLinearCurve Ramp() {
  return PiecewiseLinearCurve({{0.0, 0.0}, {10.0, 1.0}});
}

TEST(PiecewiseLinearTest, EvalInterpolates) {
  const auto c = Ramp();
  EXPECT_DOUBLE_EQ(c.Eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.Eval(5.0), 0.5);
  EXPECT_DOUBLE_EQ(c.Eval(10.0), 1.0);
}

TEST(PiecewiseLinearTest, EvalClampsOutsideDomain) {
  const auto c = Ramp();
  EXPECT_DOUBLE_EQ(c.Eval(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(c.Eval(50.0), 1.0);
}

TEST(PiecewiseLinearTest, InverseRoundTrips) {
  const PiecewiseLinearCurve c(
      {{0.0, -1.0}, {100.0, 0.0}, {500.0, 0.5}, {2'000.0, 0.9}});
  for (double y : {-0.9, -0.5, 0.0, 0.25, 0.5, 0.7, 0.9}) {
    const double x = c.Inverse(y);
    EXPECT_NEAR(c.Eval(x), y, 1e-9) << "y=" << y;
  }
}

TEST(PiecewiseLinearTest, InverseClamps) {
  const auto c = Ramp();
  EXPECT_DOUBLE_EQ(c.Inverse(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(c.Inverse(2.0), 10.0);
}

TEST(PiecewiseLinearTest, FlatSegmentInverseReturnsLeftEdge) {
  const PiecewiseLinearCurve c({{0.0, 0.0}, {5.0, 1.0}, {10.0, 1.0}});
  // Smallest x achieving y=1 is 5, not 10.
  EXPECT_DOUBLE_EQ(c.Inverse(1.0), 5.0);
}

TEST(PiecewiseLinearTest, SingleKnot) {
  const PiecewiseLinearCurve c({{3.0, 7.0}});
  EXPECT_DOUBLE_EQ(c.Eval(0.0), 7.0);
  EXPECT_DOUBLE_EQ(c.Eval(100.0), 7.0);
  EXPECT_DOUBLE_EQ(c.Inverse(7.0), 3.0);
}

TEST(PiecewiseLinearTest, NonIncreasingXThrows) {
  EXPECT_THROW(PiecewiseLinearCurve({{1.0, 0.0}, {1.0, 1.0}}),
               std::logic_error);
  EXPECT_THROW(PiecewiseLinearCurve({{2.0, 0.0}, {1.0, 1.0}}),
               std::logic_error);
}

TEST(PiecewiseLinearTest, DecreasingYThrows) {
  EXPECT_THROW(PiecewiseLinearCurve({{0.0, 1.0}, {1.0, 0.0}}),
               std::logic_error);
}

TEST(PiecewiseLinearTest, BoundsAccessors) {
  const PiecewiseLinearCurve c({{-1.0, -2.0}, {4.0, 8.0}});
  EXPECT_DOUBLE_EQ(c.min_x(), -1.0);
  EXPECT_DOUBLE_EQ(c.max_x(), 4.0);
  EXPECT_DOUBLE_EQ(c.min_y(), -2.0);
  EXPECT_DOUBLE_EQ(c.max_y(), 8.0);
}

class PiecewiseLinearMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(PiecewiseLinearMonotonicity, EvalIsMonotone) {
  const PiecewiseLinearCurve c(
      {{0.0, -3.0}, {10.0, -1.0}, {50.0, 0.0}, {200.0, 0.6}, {1'000.0, 0.63}});
  const double x = GetParam();
  EXPECT_LE(c.Eval(x), c.Eval(x + 1.0) + 1e-12);
  EXPECT_LE(c.Eval(x), c.Eval(x + 100.0) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SweepX, PiecewiseLinearMonotonicity,
                         ::testing::Values(-10.0, 0.0, 5.0, 9.9, 49.0, 120.0,
                                           500.0, 999.0, 2'000.0));

}  // namespace
}  // namespace mwp

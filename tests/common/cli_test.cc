#include "common/cli.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

CommandLine Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CommandLine(static_cast<int>(argv.size()), argv.data());
}

TEST(CommandLineTest, EqualsSyntax) {
  auto cli = Parse({"--jobs=800", "--interarrival=260.5"});
  EXPECT_EQ(cli.GetInt("jobs", 0), 800);
  EXPECT_DOUBLE_EQ(cli.GetDouble("interarrival", 0.0), 260.5);
}

TEST(CommandLineTest, SpaceSyntax) {
  auto cli = Parse({"--jobs", "42"});
  EXPECT_EQ(cli.GetInt("jobs", 0), 42);
}

TEST(CommandLineTest, BooleanFlags) {
  auto cli = Parse({"--verbose", "--quiet=false"});
  EXPECT_TRUE(cli.GetBool("verbose", false));
  EXPECT_FALSE(cli.GetBool("quiet", true));
  EXPECT_TRUE(cli.GetBool("absent", true));
}

TEST(CommandLineTest, Defaults) {
  auto cli = Parse({});
  EXPECT_EQ(cli.GetString("name", "fallback"), "fallback");
  EXPECT_EQ(cli.GetInt("n", -1), -1);
  EXPECT_FALSE(cli.Has("anything"));
}

TEST(CommandLineTest, Positional) {
  auto cli = Parse({"first", "--flag=1", "second"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
}

TEST(CommandLineTest, MalformedNumberThrows) {
  auto cli = Parse({"--n=abc"});
  EXPECT_THROW(cli.GetInt("n", 0), std::invalid_argument);
  EXPECT_THROW(cli.GetDouble("n", 0.0), std::invalid_argument);
}

TEST(CommandLineTest, MalformedBoolThrows) {
  auto cli = Parse({"--b=maybe"});
  EXPECT_THROW(cli.GetBool("b", false), std::invalid_argument);
}

TEST(CommandLineTest, GetSeedParsesAndValidates) {
  EXPECT_EQ(Parse({"--seed=42"}).GetSeed(7), 42u);
  EXPECT_EQ(Parse({}).GetSeed(7), 7u);
  EXPECT_THROW(Parse({"--seed=-3"}).GetSeed(7), std::invalid_argument);
  EXPECT_THROW(Parse({"--seed=xyz"}).GetSeed(7), std::invalid_argument);
}

TEST(CommandLineTest, FlagNamesEnumerated) {
  auto cli = Parse({"--a=1", "--b=2"});
  const auto names = cli.FlagNames();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace mwp

#include "common/table.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

TEST(TableTest, TextRenderingAligns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableTest, NumericRowFormatting) {
  Table t({"a", "b", "c"});
  t.AddNumericRow({1.5, 2.0, 0.125}, 3);
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("1.5"), std::string::npos);
  EXPECT_NE(csv.find(",2,"), std::string::npos);  // trailing zeros trimmed
  EXPECT_NE(csv.find("0.125"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table t({"x"});
  t.AddRow({std::string("a,b")});
  t.AddRow({std::string("q\"q")});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"q\""), std::string::npos);
}

TEST(TableTest, MismatchedRowThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({std::string("only-one")}), std::logic_error);
}

TEST(TableTest, RowAndColumnCounts) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FormatNumberTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatNumber(2.0), "2");
  EXPECT_EQ(FormatNumber(2.50), "2.5");
  EXPECT_EQ(FormatNumber(0.125, 3), "0.125");
}

TEST(FormatNumberTest, NegativeZeroNormalized) {
  EXPECT_EQ(FormatNumber(-0.0001, 2), "0");
}

TEST(FormatNumberTest, NanRendered) { EXPECT_EQ(FormatNumber(0.0 / 0.0), "nan"); }

TEST(FormatNumberTest, PrecisionControl) {
  EXPECT_EQ(FormatNumber(3.14159, 2), "3.14");
  EXPECT_EQ(FormatNumber(3.14159, 4), "3.1416");
}

}  // namespace
}  // namespace mwp

#include "common/units.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

TEST(UnitsTest, ApproxEqualExactValues) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0));
  EXPECT_TRUE(ApproxEqual(0.0, 0.0));
  EXPECT_TRUE(ApproxEqual(-5.5, -5.5));
}

TEST(UnitsTest, ApproxEqualWithinTolerance) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-9));
  EXPECT_TRUE(ApproxEqual(1e6, 1e6 + 0.5));
  EXPECT_FALSE(ApproxEqual(1.0, 1.1));
  EXPECT_FALSE(ApproxEqual(0.0, 1.0));
}

TEST(UnitsTest, ApproxEqualSymmetric) {
  EXPECT_EQ(ApproxEqual(3.0, 3.000001), ApproxEqual(3.000001, 3.0));
  EXPECT_EQ(ApproxEqual(-2.0, 2.0), ApproxEqual(2.0, -2.0));
}

TEST(UnitsTest, ApproxEqualCustomTolerance) {
  EXPECT_TRUE(ApproxEqual(100.0, 101.0, 0.01));
  EXPECT_FALSE(ApproxEqual(100.0, 105.0, 0.01));
}

TEST(UnitsTest, SentinelValues) {
  EXPECT_LT(kInvalidNode, 0);
  EXPECT_LT(kInvalidApp, 0);
  EXPECT_GT(kTimeForever, 1e300);
  EXPECT_LT(kUtilityFloor, -1.0);
}

TEST(UnitsTest, WorkSpeedTimeRelation) {
  // 68,640,000 Mcycles at 3,900 MHz is the paper's 17,600 s job (Table 2).
  const Megacycles work = 68'640'000.0;
  const MHz speed = 3'900.0;
  EXPECT_DOUBLE_EQ(work / speed, 17'600.0);
}

}  // namespace
}  // namespace mwp

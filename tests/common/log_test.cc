// Logger semantics: threshold gating, line formatting through the capture
// sink, and restoration of the default sink. (Concurrent emission is
// stressed separately in tests/concurrency.)
#include "common/log.h"

#include <gtest/gtest.h>

#include <string>

namespace mwp {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    old_threshold_ = Log::threshold();
    Log::set_capture_for_test(&captured_);
  }
  void TearDown() override {
    Log::set_capture_for_test(nullptr);
    Log::set_threshold(old_threshold_);
  }

  std::string captured_;
  LogLevel old_threshold_ = LogLevel::kWarn;
};

TEST_F(LogTest, BelowThresholdIsSuppressed) {
  Log::set_threshold(LogLevel::kWarn);
  MWP_LOG_DEBUG << "quiet";
  MWP_LOG_INFO << "also quiet";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, AtOrAboveThresholdEmitsTaggedLine) {
  Log::set_threshold(LogLevel::kInfo);
  MWP_LOG_INFO << "cycle " << 3 << " at t=" << 600.0;
  MWP_LOG_ERROR << "node " << 2 << " offline";
  EXPECT_EQ(captured_,
            "[INFO ] cycle 3 at t=600\n"
            "[ERROR] node 2 offline\n");
}

TEST_F(LogTest, OffThresholdSilencesEverything) {
  Log::set_threshold(LogLevel::kOff);
  MWP_LOG_ERROR << "even errors";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, WriteHonoursExactThresholdBoundary) {
  Log::set_threshold(LogLevel::kWarn);
  Log::Write(LogLevel::kWarn, "boundary");
  EXPECT_EQ(captured_, "[WARN ] boundary\n");
}

}  // namespace
}  // namespace mwp

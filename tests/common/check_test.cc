// check.h macro semantics: diagnostics, throw behaviour, evaluation
// discipline. The DCHECK expectations flip on NDEBUG, so this file pins the
// contract in both build types.
#include "common/check.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace mwp {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(MWP_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(MWP_CHECK_MSG(true, "never built"));
}

TEST(CheckTest, FailingCheckThrowsLogicErrorWithContext) {
  try {
    MWP_CHECK(2 + 2 == 5);
    FAIL() << "MWP_CHECK did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
  }
}

TEST(CheckTest, CheckMsgStreamsFormattedMessage) {
  const int node = 7;
  try {
    MWP_CHECK_MSG(node < 5, "node " << node << " out of range");
    FAIL() << "MWP_CHECK_MSG did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("node < 5"), std::string::npos) << what;
    EXPECT_NE(what.find("node 7 out of range"), std::string::npos) << what;
  }
}

TEST(CheckTest, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  MWP_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);

  evaluations = 0;
  MWP_CHECK_MSG(++evaluations > 0, "message");
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, MessageIsNotBuiltWhenConditionHolds) {
  int message_builds = 0;
  auto expensive = [&message_builds] {
    ++message_builds;
    return std::string("costly");
  };
  MWP_CHECK_MSG(true, expensive());
  EXPECT_EQ(message_builds, 0);
}

#ifdef NDEBUG

TEST(CheckTest, DcheckCompilesOutInReleaseWithoutEvaluating) {
  int evaluations = 0;
  MWP_DCHECK(++evaluations > 0);
  MWP_DCHECK(false);  // would throw in debug; must be inert here
  EXPECT_EQ(evaluations, 0);

  MWP_DCHECK_MSG(++evaluations > 0, "never " << 1);
  MWP_DCHECK_MSG(false, "never " << 2);
  EXPECT_EQ(evaluations, 0);
}

#else  // !NDEBUG

TEST(CheckTest, DcheckMatchesCheckInDebug) {
  int evaluations = 0;
  EXPECT_NO_THROW(MWP_DCHECK(++evaluations > 0));
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(MWP_DCHECK(2 + 2 == 5), std::logic_error);

  try {
    const int lane = 3;
    MWP_DCHECK_MSG(lane > 8, "lane " << lane << " below minimum");
    FAIL() << "MWP_DCHECK_MSG did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("lane 3 below minimum"),
              std::string::npos);
  }
}

#endif  // NDEBUG

}  // namespace
}  // namespace mwp

#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mwp {
namespace {

TEST(RunningStatsTest, EmptyIsNaN) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleTest, PercentilesOfKnownData) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(25.0), 25.75, 1e-9);
}

TEST(SampleTest, SingleElement) {
  Sample s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99.0), 7.0);
}

TEST(SampleTest, MeanMinMax) {
  Sample s;
  s.Add(3.0);
  s.Add(-1.0);
  s.Add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(SampleTest, AddAfterPercentileQuery) {
  Sample s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleTest, EmptyIsNaN) {
  Sample s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.median()));
}

TEST(TimeSeriesTest, MeanInWindow) {
  TimeSeries ts("test");
  ts.Add(0.0, 1.0);
  ts.Add(10.0, 3.0);
  ts.Add(20.0, 5.0);
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(0.0, 15.0), 2.0);
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(0.0, 25.0), 3.0);
  EXPECT_TRUE(std::isnan(ts.MeanInWindow(100.0, 200.0)));
}

TEST(TimeSeriesTest, WindowIsHalfOpen) {
  TimeSeries ts;
  ts.Add(10.0, 1.0);
  EXPECT_TRUE(std::isnan(ts.MeanInWindow(0.0, 10.0)));  // [0, 10) excludes 10
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(10.0, 20.0), 1.0);
}

TEST(TimeSeriesTest, BucketedDownsample) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.Add(i, static_cast<double>(i));
  TimeSeries b = ts.Bucketed(10.0);
  ASSERT_GE(b.size(), 9u);
  // First bucket covers values 0..9 -> mean 4.5.
  EXPECT_DOUBLE_EQ(b.points().front().value, 4.5);
}

TEST(TimeSeriesTest, LabelPreserved) {
  TimeSeries ts("series-label");
  ts.Add(0.0, 1.0);
  EXPECT_EQ(ts.Bucketed(1.0).label(), "series-label");
}

}  // namespace
}  // namespace mwp

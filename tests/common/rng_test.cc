#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace mwp {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform01() != b.Uniform01()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 1);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(99);
  RunningStats stats;
  const double mean = 260.0;  // Experiment One's inter-arrival mean
  for (int i = 0; i < 50'000; ++i) stats.Add(rng.Exponential(mean));
  EXPECT_NEAR(stats.mean(), mean, mean * 0.03);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RngTest, DiscreteMixtureProportions) {
  Rng rng(5);
  // Experiment Two's goal-factor mixture: 10% / 30% / 60%.
  int counts[3] = {0, 0, 0};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Discrete({0.1, 0.3, 0.6})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.10, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.30, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.60, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  // Child's stream differs from a continuation of the parent's.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.Uniform01() != child.Uniform01()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngDeathTest, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.Exponential(0.0), std::logic_error);
  EXPECT_THROW(rng.Exponential(-1.0), std::logic_error);
  EXPECT_THROW(rng.Uniform(2.0, 1.0), std::logic_error);
}

}  // namespace
}  // namespace mwp

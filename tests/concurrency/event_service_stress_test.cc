// Concurrency stress for the event-driven controller service (src/svc) —
// the TSan lane's coverage of PR 7's shared-state paths: the lock-free
// MPSC inbox under producer contention, the double-buffered capture slot
// with a writer racing a reader, TrySubmit's one-deep task slot, and the
// full threaded service (control thread + async solver + producers).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "batch/job_factory.h"
#include "core/apc_controller.h"
#include "core/double_buffer.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "svc/controller_service.h"
#include "svc/event_inbox.h"

namespace mwp {
namespace {

TEST(EventInboxStressTest, ManyProducersNoLossNoDuplication) {
  // 4 producers push disjoint job-id ranges through a ring big enough to
  // never overflow; the consumer drains concurrently. Every event must
  // come out exactly once, and each producer's events in its push order.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5'000;
  EventInbox inbox(1 << 15);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&inbox, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ControlEvent e;
        e.kind = ControlEventKind::kJobArrival;
        e.job = p * kPerProducer + i;
        while (!inbox.TryPush(e)) std::this_thread::yield();
      }
    });
  }

  std::vector<int> seen_count(kProducers * kPerProducer, 0);
  std::vector<int> last_per_producer(kProducers, -1);
  std::vector<ControlEvent> batch;
  std::size_t drained = 0;
  while (drained < static_cast<std::size_t>(kProducers * kPerProducer)) {
    batch.clear();
    if (inbox.DrainInto(batch, 256) == 0) {
      inbox.WaitNonEmpty(/*timeout_ns=*/1'000'000);
      continue;
    }
    for (const ControlEvent& e : batch) {
      const int producer = e.job / kPerProducer;
      const int index = e.job % kPerProducer;
      ++seen_count[static_cast<std::size_t>(e.job)];
      // Per-producer FIFO: a producer's events drain in push order.
      EXPECT_GT(index, last_per_producer[static_cast<std::size_t>(producer)]);
      last_per_producer[static_cast<std::size_t>(producer)] = index;
    }
    drained += batch.size();
  }
  for (std::thread& t : producers) t.join();

  for (int count : seen_count) EXPECT_EQ(count, 1);
  EXPECT_EQ(inbox.pushed(), static_cast<std::uint64_t>(kProducers) *
                                static_cast<std::uint64_t>(kPerProducer));
  EXPECT_EQ(inbox.size(), 0u);
}

TEST(EventInboxStressTest, TinyRingUnderContentionAccountsEveryEvent) {
  // A deliberately overflowing ring: pushed + dropped must equal attempts,
  // and exactly the accepted events come out — shedding loses events, never
  // corrupts the ring.
  constexpr int kProducers = 4;
  constexpr int kAttemptsPer = 20'000;
  EventInbox inbox(8);
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&inbox, p] {
      for (int i = 0; i < kAttemptsPer; ++i) {
        ControlEvent e;
        e.kind = ControlEventKind::kNodeFault;
        e.node = p;
        inbox.TryPush(e);  // shedding is expected and fine
      }
    });
  }

  std::atomic<std::uint64_t> drained{0};
  std::thread consumer([&] {
    std::vector<ControlEvent> batch;
    while (!done.load(std::memory_order_acquire)) {
      batch.clear();
      drained.fetch_add(inbox.DrainInto(batch, 64),
                        std::memory_order_relaxed);
    }
    batch.clear();
    drained.fetch_add(inbox.DrainInto(batch, 1 << 20),
                      std::memory_order_relaxed);
  });

  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(inbox.pushed() + inbox.dropped(),
            static_cast<std::uint64_t>(kProducers) * kAttemptsPer);
  EXPECT_EQ(drained.load(), inbox.pushed());
  EXPECT_EQ(inbox.size(), 0u);
}

TEST(EventInboxStressTest, DoorbellWakesParkedConsumer) {
  EventInbox inbox(64);
  std::atomic<int> received{0};
  std::thread consumer([&] {
    std::vector<ControlEvent> batch;
    while (received.load() < 100) {
      batch.clear();
      if (inbox.DrainInto(batch, 16) == 0) {
        inbox.WaitNonEmpty(/*timeout_ns=*/50'000'000);
        continue;
      }
      received.fetch_add(static_cast<int>(batch.size()));
    }
  });
  for (int i = 0; i < 100; ++i) {
    ControlEvent e;
    e.kind = ControlEventKind::kTimerTick;
    while (!inbox.TryPush(e)) std::this_thread::yield();
    if (i % 10 == 0) std::this_thread::yield();  // let the consumer park
  }
  consumer.join();
  EXPECT_EQ(received.load(), 100);
}

TEST(DoubleBufferStressTest, WriterAndReaderNeverTear) {
  // Writer publishes strictly increasing values; reader acquires whenever
  // one is available. Values observed must be monotone (latest-wins never
  // resurrects an older capture) and the final publication must be seen.
  DoubleBuffer<std::int64_t> buffer;
  constexpr std::int64_t kLast = 20'000;
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    for (std::int64_t v = 0; v <= kLast; ++v) buffer.Publish(v);
    writer_done.store(true, std::memory_order_release);
  });

  std::int64_t previous = -1;
  bool saw_last = false;
  while (!saw_last) {
    const std::int64_t* got = buffer.Acquire();
    if (got == nullptr) {
      if (writer_done.load(std::memory_order_acquire) &&
          !buffer.has_latest()) {
        break;
      }
      std::this_thread::yield();
      continue;
    }
    EXPECT_GT(*got, previous);
    previous = *got;
    saw_last = *got == kLast;
    buffer.Release();
  }
  writer.join();
  if (!saw_last) {
    // The writer finished between our last acquire and the emptiness check;
    // the final value must still be there.
    const std::int64_t* got = buffer.Acquire();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, kLast);
    buffer.Release();
  }
}

TEST(ThreadPoolStressTest, ConcurrentTrySubmitNeverLosesAcceptedTasks) {
  ThreadPool pool(2);
  constexpr int kThreads = 4;
  constexpr int kAttemptsPer = 2'000;
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kAttemptsPer; ++i) {
        if (pool.TrySubmit([&] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  while (executed.load() < accepted.load()) std::this_thread::yield();
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_GT(accepted.load(), 0);
}

// The full threaded service: producers storm the inbox while the control
// thread classifies and decides, with full solves running asynchronously on
// a separate solver pool. Asserts the accounting invariants; under TSan
// this is the main event-to-decision race detector.
TEST(ControllerServiceStressTest, ThreadedStormWithAsyncSolves) {
  ClusterSpec cluster = ClusterSpec::Uniform(
      6, NodeSpec{/*num_cpus=*/4, /*cpu_speed_mhz=*/3'000.0,
                  /*memory_mb=*/8'192.0});
  JobQueue queue;
  obs::MetricsRegistry metrics;
  ApcController::Config cfg;
  cfg.control_cycle = 600.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);

  // World mutations happen on the control thread via apply_event, so the
  // queue and cluster are never touched concurrently.
  IdenticalJobFactory factory(
      JobProfile::SingleStage(/*work=*/300'000.0, /*max_speed=*/3'000.0,
                              /*memory=*/2'048.0),
      /*relative_goal_factor=*/2.7, /*first_id=*/1'000);

  ThreadPool solver_pool(1);
  ControllerService::Config svc_cfg;
  svc_cfg.metrics = &metrics;
  svc_cfg.async_full_solve = true;
  svc_cfg.solver_pool = &solver_pool;
  svc_cfg.small_batch_events = 16;
  svc_cfg.apply_event = [&](const ControlEvent& e) {
    switch (e.kind) {
      case ControlEventKind::kJobArrival:
        queue.Submit(factory.Create(e.time));
        break;
      case ControlEventKind::kNodeFault:
        cluster.SetNodeOffline(e.node);
        break;
      case ControlEventKind::kNodeRestore:
        cluster.SetNodeOnline(e.node);
        break;
      default:
        break;
    }
  };
  ControllerService service(&controller, svc_cfg);
  service.Start();

  constexpr int kProducers = 3;
  constexpr int kEventsPer = 300;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, p] {
      for (int i = 0; i < kEventsPer; ++i) {
        ControlEvent e;
        e.time = static_cast<Seconds>(i) + p * 0.1;
        if (i % 60 == 20) {
          e.kind = ControlEventKind::kNodeFault;
          e.node = 1 + p;
        } else if (i % 60 == 40) {
          e.kind = ControlEventKind::kNodeRestore;
          e.node = 1 + p;
        } else if (i % 30 == 29) {
          e.kind = ControlEventKind::kTimerTick;
        } else {
          e.kind = ControlEventKind::kJobArrival;
        }
        while (!service.Publish(e)) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.Stop();  // drains everything and commits the in-flight solve

  const ControllerService::Counters& c = service.counters();
  EXPECT_GT(c.batches, 0u);
  EXPECT_GT(c.full_cycles, 0u);
  // Every accepted event was handled by some decision (none lost).
  EXPECT_EQ(metrics.counter("svc.events").value(), service.inbox().pushed());
  EXPECT_EQ(service.inbox().size(), 0u);
  // The latency histogram saw every decided batch's events.
  EXPECT_GT(
      metrics.histogram("svc.event_to_decision_seconds").count(), 0u);
}

// Quiescent threaded service: ticks only, stopping between each, must act
// exactly like calling RunCycleAt in a loop — same number of cycles.
TEST(ControllerServiceStressTest, ThreadedTickLoopMatchesCycleCount) {
  ClusterSpec cluster = ClusterSpec::Uniform(
      4, NodeSpec{/*num_cpus=*/4, /*cpu_speed_mhz=*/3'000.0,
                  /*memory_mb=*/8'192.0});
  JobQueue queue;
  ApcController::Config cfg;
  cfg.control_cycle = 600.0;
  cfg.costs = VmCostModel::Free();
  ApcController controller(&cluster, &queue, cfg);
  ControllerService service(&controller, {});
  service.Start();
  for (int i = 0; i < 5; ++i) {
    ControlEvent tick;
    tick.kind = ControlEventKind::kTimerTick;
    tick.time = i * 600.0;
    while (!service.Publish(tick)) std::this_thread::yield();
    // Space the ticks out so they are not coalesced into one batch.
    while (service.inbox().size() > 0) std::this_thread::yield();
  }
  service.Stop();
  EXPECT_GE(service.counters().full_cycles, 1u);
  EXPECT_EQ(service.counters().full_cycles + service.counters().deduped, 5u);
  EXPECT_EQ(controller.cycles().size(),
            static_cast<std::size_t>(service.counters().full_cycles));
}

}  // namespace
}  // namespace mwp

// Concurrency stress tests — the ThreadSanitizer lane's main payload.
//
// These tests exist to put every shared-state path PR 1 and PR 2 created
// under real contention: the optimizer's chunked parallel candidate search
// (thread pool + shared column cache), concurrent column-cache hits and
// misses, the process-wide logger, and fault-repair cycles running while
// other simulations execute control cycles on sibling threads. They run in
// every lane (the assertions are meaningful without TSan), but their job is
// to give `-fsanitize=thread` something to bite on; CI's tsan lane runs
// exactly the `concurrency` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "core/evaluation_cache.h"
#include "core/placement_optimizer.h"
#include "core/sharded_optimizer.h"
#include "core/thread_pool.h"
#include "exp/experiment4.h"

namespace mwp {
namespace {

/// Loaded snapshot in the shape of the optimizer benchmark: `nodes` paper
/// nodes with three running jobs each and a queue of `queued` more, so the
/// candidate search has real work to parallelize.
struct LoadedSystem {
  ClusterSpec cluster;
  std::vector<JobProfile> profiles;
  std::vector<JobView> jobs;

  LoadedSystem(int nodes, int queued)
      : cluster(ClusterSpec::Uniform(nodes, NodeSpec{4, 3'900.0, 15'000.0})) {
    const int running = nodes * 3;
    profiles.assign(static_cast<std::size_t>(running + queued),
                    JobProfile::SingleStage(68'640'000.0, 3'900.0, 4'320.0));
    // Deterministic spread of goals/progress (no Rng: identical snapshots
    // on every platform keep the cross-thread-count comparison exact).
    for (int j = 0; j < running + queued; ++j) {
      JobView v;
      v.id = j;
      v.profile = &profiles[static_cast<std::size_t>(j)];
      v.goal = JobGoal::FromFactor(-200.0 * j, 2.7, 17'600.0);
      v.memory = 4'320.0;
      v.max_speed = 3'900.0;
      if (j < running) {
        v.work_done = 250'000.0 * j;
        v.status = JobStatus::kRunning;
        v.current_node = j / 3;
      } else {
        v.status = JobStatus::kNotStarted;
        v.place_overhead = 3.6;
      }
      jobs.push_back(v);
    }
  }

  PlacementSnapshot Snapshot() const {
    return PlacementSnapshot(&cluster, 0.0, 600.0, jobs, {});
  }
};

std::string Fingerprint(const PlacementOptimizer::Result& r) {
  std::ostringstream os;
  os << r.evaluations << '|' << r.used_shortcut << '|';
  for (Utility u : r.evaluation.sorted_utilities) os << u << ',';
  os << '|' << r.evaluation.changes.size();
  return os.str();
}

// The paper-faithful determinism claim of the parallel search: any lane
// count picks the winner the sequential loops would, and scores exactly the
// candidates they would score. Under TSan this is also the race detector
// for pool dispatch, per-lane scratches, and the shared column cache.
TEST(ConcurrencyStress, ParallelCandidateSearchThreadCounts) {
  const LoadedSystem sys(8, 10);
  const PlacementSnapshot snap = sys.Snapshot();

  PlacementOptimizer::Options sequential;
  sequential.search_threads = 1;
  const PlacementOptimizer::Result want =
      PlacementOptimizer(&snap, sequential).Optimize();
  ASSERT_GT(want.evaluations, 1);

  for (int threads : {2, 8, 16}) {
    SCOPED_TRACE("search_threads=" + std::to_string(threads));
    PlacementOptimizer::Options options;
    options.search_threads = threads;
    const PlacementOptimizer optimizer(&snap, options);
    EXPECT_EQ(optimizer.search_lanes(), threads);
    const PlacementOptimizer::Result got = optimizer.Optimize();
    EXPECT_EQ(got.placement, want.placement);
    EXPECT_EQ(got.evaluations, want.evaluations);
    EXPECT_EQ(Fingerprint(got), Fingerprint(want));
  }
}

// Concurrent per-cell solves of the sharded optimizer: each pool index
// builds its own SnapshotSlice and PlacementOptimizer over the shared
// global snapshot, so TSan watches the read-only snapshot fan-out plus the
// per-cell result slots. The decisions must be identical for every cell
// lane count — the sharded analogue of the candidate-search claim above.
TEST(ConcurrencyStress, ConcurrentCellSolvesThreadCounts) {
  const LoadedSystem sys(12, 12);
  const PlacementSnapshot snap = sys.Snapshot();

  ShardedPlacementOptimizer::Options sequential;
  sequential.cell_size = 3;  // 4 cells
  sequential.cell_threads = 1;
  const ShardedPlacementOptimizer::Result want =
      ShardedPlacementOptimizer(&snap, sequential).Optimize();
  ASSERT_EQ(want.num_cells, 4);
  ASSERT_TRUE(snap.IsFeasible(want.global.placement));

  for (int threads : {2, 4, 16}) {
    SCOPED_TRACE("cell_threads=" + std::to_string(threads));
    ShardedPlacementOptimizer::Options options = sequential;
    options.cell_threads = threads;
    const ShardedPlacementOptimizer optimizer(&snap, options);
    const ShardedPlacementOptimizer::Result got = optimizer.Optimize();
    EXPECT_EQ(got.global.placement, want.global.placement);
    EXPECT_EQ(got.global.evaluation.sorted_utilities,
              want.global.evaluation.sorted_utilities);
    EXPECT_EQ(got.cross_cell_transfers, want.cross_cell_transfers);
    EXPECT_EQ(Fingerprint(got.global), Fingerprint(want.global));
  }
}

// Hammers one shared HypColumnCache from many threads with overlapping key
// sets, so both the hit path (find under lock) and the miss path (compute
// outside the lock, publish under it) run concurrently. Every thread must
// observe pointer-stable, bit-identical columns, and the hit/miss counters
// must account for every Get exactly once.
TEST(ConcurrencyStress, ConcurrentColumnCacheHitsAndMisses) {
  const JobProfile profile =
      JobProfile::SingleStage(1'000'000.0, 2'000.0, 1'000.0);
  const JobGoal goal = JobGoal::FromFactor(0.0, 3.0, 500.0);
  const std::vector<double> grid = HypotheticalRpf::DefaultGrid();
  constexpr int kJobs = 4;
  constexpr int kThreads = 8;
  constexpr int kStates = 16;
  constexpr int kRounds = 200;

  HypColumnCache cache(600.0, grid, kJobs);
  std::vector<std::map<std::pair<int, int>, const HypotheticalRpf::Column*>>
      seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Interleave so early rounds collide across threads on fresh keys.
        for (int s = 0; s < kStates; ++s) {
          const int job = (s + t) % kJobs;
          HypotheticalJobState state{&profile, goal, 40'000.0 * s,
                                     (s % 3) * 10.0};
          const HypotheticalRpf::Column* col = cache.Get(job, state);
          ASSERT_NE(col, nullptr);
          auto [it, inserted] = seen[static_cast<std::size_t>(t)].try_emplace(
              {job, s}, col);
          // Columns are interned: later lookups return the first pointer.
          ASSERT_EQ(it->second, col);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Each (job, state) pair maps to one stable column shared by all threads.
  for (int t = 1; t < kThreads; ++t) {
    for (const auto& [key, col] : seen[static_cast<std::size_t>(t)]) {
      auto it = seen[0].find(key);
      if (it != seen[0].end()) EXPECT_EQ(it->second, col);
    }
  }
  const std::size_t total =
      static_cast<std::size_t>(kThreads) * kRounds * kStates;
  EXPECT_EQ(cache.hits() + cache.misses(), total);
  // At most one duplicate computation per colliding first touch; far fewer
  // misses than distinct keys * threads would mean the lock is broken.
  EXPECT_GE(cache.misses(), static_cast<std::size_t>(kStates));
  EXPECT_LE(cache.misses(), static_cast<std::size_t>(kStates) * kThreads);

  // Cached columns are the exact bits a fresh computation produces.
  HypotheticalJobState probe{&profile, goal, 40'000.0, 10.0};
  const HypotheticalRpf::Column fresh =
      HypotheticalRpf::ComputeColumn(probe, 600.0, grid);
  const HypotheticalRpf::Column* cached = cache.Get(1, probe);
  EXPECT_EQ(cached->w, fresh.w);
  EXPECT_EQ(cached->v, fresh.v);
}

// Repeated batches through one pool: every index runs exactly once per
// batch, results land in per-index slots, and an exception in any lane
// aborts the batch, propagates to the caller, and leaves the pool usable.
TEST(ConcurrencyStress, ThreadPoolBatchesAndExceptionRecovery) {
  ThreadPool pool(7);
  ASSERT_EQ(pool.concurrency(), 8);

  constexpr std::size_t kCount = 500;
  std::vector<int> touched(kCount, 0);
  for (int batch = 0; batch < 25; ++batch) {
    std::vector<std::uint64_t> out(kCount, 0);
    pool.ParallelFor(kCount, [&](int lane, std::size_t i) {
      ASSERT_GE(lane, 0);
      ASSERT_LT(lane, 8);
      out[i] = static_cast<std::uint64_t>(i) * i + batch;
      ++touched[i];
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(out[i], static_cast<std::uint64_t>(i) * i + batch);
    }
  }
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(touched[i], 25);

  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(kCount,
                                [&](int, std::size_t i) {
                                  ran.fetch_add(1, std::memory_order_relaxed);
                                  if (i == 17) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  EXPECT_GE(ran.load(), 1);

  // The pool survives the aborted batch.
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(100, [&](int, std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4'950u);
}

// OnNodeFault racing control cycles: within one simulation the event queue
// serializes them (that is the designed contract), so the race TSan must
// clear is *across* simulations — several full fault-injection experiments,
// each with crashes, out-of-band repairs, periodic cycles, and a parallel
// candidate search, running simultaneously on sibling threads while all of
// them emit through the shared logger. Any hidden cross-simulation shared
// state (or a logger race) fails here; determinism of every run is the
// functional assertion.
TEST(ConcurrencyStress, FaultRepairRacingControlCyclesAcrossSimulations) {
  const LogLevel old_threshold = Log::threshold();
  std::string captured;
  Log::set_capture_for_test(&captured);
  Log::set_threshold(LogLevel::kDebug);

  const int lane_counts[] = {1, 2, 4, 8};
  constexpr int kRuns = 4;
  std::vector<Experiment4Result> results(kRuns);
  std::vector<std::thread> threads;
  threads.reserve(kRuns);
  for (int r = 0; r < kRuns; ++r) {
    threads.emplace_back([&, r] {
      Experiment4Config config;
      config.mode = Experiment4Mode::kDynamicApc;
      config.search_threads = lane_counts[r];
      config.fault_plan = MakeExperiment4FaultPlan(config);
      results[static_cast<std::size_t>(r)] = RunExperiment4(config);
    });
  }
  for (std::thread& t : threads) t.join();

  Log::set_threshold(old_threshold);
  Log::set_capture_for_test(nullptr);

  ASSERT_FALSE(results[0].fault_trace.empty());
  EXPECT_GT(results[0].crashes, 0);
  for (int r = 1; r < kRuns; ++r) {
    SCOPED_TRACE("run=" + std::to_string(r));
    EXPECT_EQ(results[static_cast<std::size_t>(r)].fault_trace,
              results[0].fault_trace);
    EXPECT_EQ(results[static_cast<std::size_t>(r)].placement_fingerprint,
              results[0].placement_fingerprint);
    EXPECT_EQ(results[static_cast<std::size_t>(r)].jobs_completed,
              results[0].jobs_completed);
  }
}

// Whole lines from concurrent writers must come out intact: the logger's
// mutex covers formatting+emission as a unit.
TEST(ConcurrencyStress, LoggerInterleavesWholeLines) {
  const LogLevel old_threshold = Log::threshold();
  std::string captured;
  Log::set_capture_for_test(&captured);
  Log::set_threshold(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLines = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        MWP_LOG_INFO << "writer " << t << " line " << i << " payload "
                     << t * 1'000 + i;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  Log::set_threshold(old_threshold);
  Log::set_capture_for_test(nullptr);

  std::istringstream in(captured);
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ++count;
    // "[INFO ] writer T line I payload P" with P == T*1000 + I, intact.
    std::istringstream fields(line);
    std::string tag1, tag2, word;
    int t = -1, i = -1, p = -1;
    fields >> tag1 >> tag2 >> word >> t >> word >> i >> word >> p;
    ASSERT_EQ(tag1, "[INFO");
    ASSERT_EQ(p, t * 1'000 + i) << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

}  // namespace
}  // namespace mwp

// Replay round trip for event-triggered cycle traces (PR 7): a run driven
// through the event-driven controller service — faults, restores, load
// shifts and all — records full cycle traces, exports them through the real
// JSONL writer, parses them back and replays bit-exact. Event-triggered
// cycles carry trigger="event"; the round trip must preserve the tag and
// the replay must treat those cycles exactly like periodic ones (the
// recorded input snapshot, not the trigger, is what replays).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "batch/job_factory.h"
#include "core/apc_controller.h"
#include "obs/cycle_trace.h"
#include "obs/trace_export.h"
#include "replay/replay.h"
#include "replay/trace_reader.h"
#include "sim/simulation.h"
#include "svc/controller_service.h"
#include "svc/event_adapters.h"
#include "web/workload_generator.h"

namespace mwp::replay {
namespace {

// A miniature event storm in the shape of examples/event_storm.cc: Poisson
// arrivals through the inbox, one fault/restore episode, a tx app watched
// for load shifts, plus the periodic service timer — recorded with
// --trace-full semantics.
ParsedTrace RecordEventStormFullTrace() {
  ClusterSpec cluster = ClusterSpec::Uniform(
      4, NodeSpec{/*num_cpus=*/4, /*cpu_speed_mhz=*/3'000.0,
                  /*memory_mb=*/8'192.0});
  JobQueue queue;
  Simulation sim;
  obs::TraceRecorder recorder;

  ApcController::Config cfg;
  cfg.control_cycle = 300.0;
  cfg.costs = VmCostModel::Free();
  cfg.trace = &recorder;
  cfg.trace_run_id = "storm-selftest";
  cfg.trace_full = true;
  ApcController controller(&cluster, &queue, cfg);

  TransactionalAppSpec tx;
  tx.id = 50'000;
  tx.name = "web";
  tx.memory_per_instance = 1'024.0;
  tx.response_time_goal = 0.5;
  tx.demand_per_request = 200.0;
  tx.min_response_time = 0.05;
  tx.saturation_allocation = 6'000.0;
  tx.max_instances = 4;
  auto rate = std::make_shared<StepRate>(std::vector<StepRate::Step>{
      {0.0, 5.0}, {700.0, 12.0}});
  controller.AddTransactionalApp(tx, rate);

  ControllerService::Config svc_cfg;
  ControllerService service(&controller, svc_cfg);

  auto factory = std::make_unique<IdenticalJobFactory>(
      JobProfile::SingleStage(/*work=*/150'000.0, /*max_speed=*/3'000.0,
                              /*memory=*/2'048.0),
      /*relative_goal_factor=*/2.7, /*first_id=*/100);
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(40.0 * i + 10.0,
                   [&queue, &factory, &service](Simulation& s) {
                     Job& job = queue.Submit(factory->Create(s.now()));
                     PublishJobArrival(service, s, job.id());
                   });
  }
  sim.ScheduleAt(400.0, [&cluster, &service](Simulation& s) {
    cluster.SetNodeOffline(1);
    PublishNodeFault(service, s, 1);
  });
  sim.ScheduleAt(550.0, [&cluster, &service](Simulation& s) {
    cluster.SetNodeOnline(1);
    PublishNodeRestore(service, s, 1);
  });
  AttachServiceTimer(service, sim, /*first=*/0.0, 300.0);
  WatchTxLoadShift(service, sim, rate, /*tx_index=*/0,
                   /*sample_period=*/100.0, /*shift_fraction=*/0.3);

  sim.RunUntil(1'200.0);
  EXPECT_GT(service.counters().full_cycles, 0u);

  std::ostringstream os;
  obs::WriteTraceJsonl(
      os,
      obs::MakeTraceContext("event_storm", /*seed=*/7, 300.0,
                            "storm-selftest"),
      recorder.Traces());
  std::string error;
  auto parsed = ParseTraceJsonl(os.str(), &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return std::move(*parsed);
}

const ParsedTrace& StormTrace() {
  static const ParsedTrace trace = RecordEventStormFullTrace();
  return trace;
}

TEST(EventReplayTest, TriggerTagSurvivesTheRoundTrip) {
  const ParsedTrace& trace = StormTrace();
  ASSERT_FALSE(trace.cycles.empty());
  int event_cycles = 0;
  int tick_cycles = 0;
  for (const obs::CycleTrace& t : trace.cycles) {
    if (t.trigger == "event") {
      ++event_cycles;
    } else {
      EXPECT_EQ(t.trigger, "");
      ++tick_cycles;
    }
  }
  // The restore and the load shift each force an event-triggered cycle;
  // the periodic timer keeps running underneath.
  EXPECT_GE(event_cycles, 2);
  EXPECT_GE(tick_cycles, 2);
}

TEST(EventReplayTest, EventTriggeredCyclesReplayBitExact) {
  const ReplayOptions options;
  const ReplayReport report = ReplayTrace(StormTrace(), options);
  EXPECT_GT(report.total_cycles, 0);
  EXPECT_EQ(report.replayed_cycles, report.total_cycles);
  EXPECT_EQ(report.skipped_cycles, 0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.regressed_cycles, 0);
  EXPECT_EQ(report.cycles_with_placement_diff, 0);
  EXPECT_EQ(report.max_rp_drift, 0.0);
  EXPECT_EQ(report.max_allocation_drift, 0.0);
}

TEST(EventReplayTest, ReexportIsByteIdenticalIncludingTriggers) {
  // Writer → reader → writer fixpoint, the same guarantee the golden-trace
  // gate relies on, now with trigger fields present.
  const ParsedTrace& trace = StormTrace();
  std::ostringstream os;
  obs::WriteTraceJsonl(
      os,
      obs::MakeTraceContext("event_storm", /*seed=*/7, 300.0,
                            "storm-selftest"),
      trace.cycles);
  std::string error;
  auto reparsed = ParseTraceJsonl(os.str(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  ASSERT_EQ(reparsed->cycles.size(), trace.cycles.size());
  for (std::size_t i = 0; i < trace.cycles.size(); ++i) {
    EXPECT_EQ(reparsed->cycles[i].trigger, trace.cycles[i].trigger)
        << "cycle " << i;
  }
}

}  // namespace
}  // namespace mwp::replay

#include "replay/trace_reader.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/cycle_trace.h"
#include "obs/trace_export.h"

namespace mwp::replay {
namespace {

// The schema-v1 wire format, frozen when kTraceSchemaVersion was bumped to 2:
// archived traces must keep parsing (with empty run ids and no input).
constexpr const char* kV1Trace =
    R"({"record":"header","schema_version":1,"experiment":"golden","seed":7,"control_cycle":600,"build_type":"Release","git_sha":"deadbeef","num_cycles":2}
{"record":"cycle","cycle":0,"time":0,"avg_job_rp":0.75,"min_job_rp":0.5,"num_jobs":2,"running_jobs":2,"queued_jobs":0,"suspended_jobs":0,"batch_allocation":1024,"tx_allocation":512,"cluster_utilization":0.75,"starts":2,"stops":0,"suspends":0,"resumes":0,"migrations":0,"failed_operations":0,"evaluations":3,"shortcut":false,"solver_seconds":0.25,"cache_hits":4,"cache_misses":2,"distribute_calls":6,"nodes_online":2,"nodes_degraded":1,"nodes_offline":0,"available_cpu":3000,"nominal_cpu":3200,"rp_before":[0.5,0.75],"rp_after":[0.75,0.75],"tx_utilities":[0.5],"tx_allocations":[512]}
{"record":"cycle","cycle":1,"time":600,"avg_job_rp":null,"min_job_rp":null,"num_jobs":0,"running_jobs":0,"queued_jobs":0,"suspended_jobs":0,"batch_allocation":0,"tx_allocation":0,"cluster_utilization":0,"starts":0,"stops":0,"suspends":0,"resumes":0,"migrations":0,"failed_operations":0,"evaluations":0,"shortcut":true,"solver_seconds":0,"cache_hits":0,"cache_misses":0,"distribute_calls":0,"nodes_online":3,"nodes_degraded":0,"nodes_offline":0,"available_cpu":3200,"nominal_cpu":3200,"rp_before":[],"rp_after":[],"tx_utilities":[],"tx_allocations":[]}
)";

TEST(TraceReaderTest, ParsesArchivedV1Trace) {
  std::string error;
  const auto trace = ParseTraceJsonl(kV1Trace, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->schema_version, 1);
  EXPECT_EQ(trace->context.experiment, "golden");
  EXPECT_EQ(trace->context.seed, 7u);
  EXPECT_TRUE(trace->context.run_id.empty());
  ASSERT_EQ(trace->cycles.size(), 2u);

  const obs::CycleTrace& a = trace->cycles[0];
  EXPECT_TRUE(a.run_id.empty());
  EXPECT_EQ(a.cycle, 0);
  EXPECT_EQ(a.num_jobs, 2);
  EXPECT_DOUBLE_EQ(a.avg_job_rp, 0.75);
  EXPECT_EQ(a.rp_before, (std::vector<Utility>{0.5, 0.75}));
  EXPECT_EQ(a.node_health.degraded, 1);
  EXPECT_FALSE(a.input.has_value());
  EXPECT_FALSE(a.decision.has_value());

  const obs::CycleTrace& b = trace->cycles[1];
  EXPECT_TRUE(std::isnan(b.avg_job_rp));
  EXPECT_TRUE(b.shortcut);
  EXPECT_TRUE(b.rp_after.empty());
}

TEST(TraceReaderTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseTraceJsonl("", &error).has_value());
  EXPECT_FALSE(ParseTraceJsonl("garbage\n", &error).has_value());

  // Unsupported schema version.
  EXPECT_FALSE(
      ParseTraceJsonl(
          R"({"record":"header","schema_version":3,"run_id":"","experiment":"x","seed":1,"control_cycle":1,"build_type":"b","git_sha":"g","num_cycles":0})"
          "\n",
          &error)
          .has_value());
  EXPECT_NE(error.find("schema"), std::string::npos) << error;

  // Header promises more cycles than the file contains (truncated export).
  EXPECT_FALSE(
      ParseTraceJsonl(
          R"({"record":"header","schema_version":2,"run_id":"","experiment":"x","seed":1,"control_cycle":1,"build_type":"b","git_sha":"g","num_cycles":2})"
          "\n",
          &error)
          .has_value());
}

TEST(TraceReaderTest, ReportsLineNumbersInErrors) {
  std::string error;
  const std::string text =
      R"({"record":"header","schema_version":2,"run_id":"","experiment":"x","seed":1,"control_cycle":1,"build_type":"b","git_sha":"g","num_cycles":1})"
      "\nnot json\n";
  EXPECT_FALSE(ParseTraceJsonl(text, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// --- serialize → parse → serialize byte-stability property --------------

std::vector<Utility> RandomVector(Rng& rng, int max_len) {
  std::vector<Utility> v(static_cast<std::size_t>(rng.UniformInt(0, max_len)));
  for (Utility& u : v) u = rng.Uniform(-2.0, 2.0);
  return v;
}

obs::CycleInputRecord RandomInput(Rng& rng) {
  obs::CycleInputRecord in;
  in.now = rng.Uniform(0.0, 1e6);
  in.control_cycle = rng.Uniform(1.0, 1000.0);
  const int num_nodes = static_cast<int>(rng.UniformInt(1, 3));
  for (int n = 0; n < num_nodes; ++n) {
    obs::TraceNodeInput node;
    node.num_cpus = static_cast<int>(rng.UniformInt(1, 4));
    node.cpu_speed = rng.Uniform(500.0, 4000.0);
    node.memory = rng.Uniform(1024.0, 16384.0);
    node.state = static_cast<int>(rng.UniformInt(0, 2));
    node.speed_factor = rng.Uniform(0.1, 1.0);
    in.nodes.push_back(node);
  }
  const int num_jobs = static_cast<int>(rng.UniformInt(0, 2));
  for (int j = 0; j < num_jobs; ++j) {
    obs::TraceJobInput job;
    job.id = static_cast<AppId>(rng.UniformInt(1, 100));
    job.submit_time = rng.Uniform(0.0, 1e5);
    job.desired_start = rng.Uniform(0.0, 1e5);
    job.completion_goal = rng.Uniform(0.0, 1e6);
    job.work_done = rng.Uniform(0.0, 1e6);
    job.status = static_cast<int>(rng.UniformInt(0, 4));
    job.current_node =
        static_cast<NodeId>(rng.UniformInt(-1, num_nodes - 1));
    job.overhead_until = rng.Uniform(0.0, 100.0);
    job.place_overhead = rng.Uniform(0.0, 100.0);
    job.migrate_overhead = rng.Uniform(0.0, 100.0);
    job.memory = rng.Uniform(128.0, 8192.0);
    job.max_speed = rng.Uniform(100.0, 4000.0);
    job.min_speed = rng.Uniform(0.0, 100.0);
    const int num_stages = static_cast<int>(rng.UniformInt(1, 2));
    for (int s = 0; s < num_stages; ++s) {
      job.stages.push_back({rng.Uniform(1.0, 1e6), rng.Uniform(100.0, 4000.0),
                            rng.Uniform(0.0, 100.0),
                            rng.Uniform(128.0, 8192.0)});
    }
    in.jobs.push_back(std::move(job));
  }
  if (rng.Uniform01() < 0.5) {
    obs::TraceTxInput tx;
    tx.id = static_cast<AppId>(rng.UniformInt(101, 200));
    tx.name = "tx" + std::to_string(rng.UniformInt(0, 9));
    tx.memory = rng.Uniform(128.0, 4096.0);
    tx.response_time_goal = rng.Uniform(0.01, 2.0);
    tx.demand_per_request = rng.Uniform(0.1, 20.0);
    tx.min_response_time = rng.Uniform(0.001, 0.01);
    tx.saturation = rng.Uniform(0.1, 1.0);
    tx.max_instances = static_cast<int>(rng.UniformInt(1, 5));
    tx.arrival_rate = rng.Uniform(0.0, 2000.0);
    for (int n = 0; n < num_nodes; ++n) {
      if (rng.Uniform01() < 0.5) tx.current_nodes.push_back(n);
    }
    in.tx_apps.push_back(std::move(tx));
  }
  in.options.max_sweeps = static_cast<int>(rng.UniformInt(1, 4));
  in.options.max_evaluations = static_cast<int>(rng.UniformInt(0, 1000));
  in.options.tie_tolerance = rng.Uniform(0.0, 0.1);
  const int grid_size = static_cast<int>(rng.UniformInt(0, 2));
  for (int g = 0; g < grid_size; ++g) {
    in.options.grid.push_back(rng.Uniform(0.0, 1.0));
  }
  in.options.level_tolerance = rng.Uniform(1e-6, 1e-3);
  in.options.probe_delta = rng.Uniform(1e-4, 1e-2);
  in.options.bisection_iters = static_cast<int>(rng.UniformInt(8, 64));
  in.options.batch_aggregate = rng.Uniform01() < 0.5;
  if (rng.Uniform01() < 0.5) {
    obs::TracePin pin;
    pin.app = static_cast<AppId>(rng.UniformInt(1, 100));
    pin.nodes.push_back(static_cast<NodeId>(rng.UniformInt(0, num_nodes - 1)));
    in.pins.push_back(std::move(pin));
  }
  if (rng.Uniform01() < 0.5) {
    in.separations.push_back({static_cast<AppId>(rng.UniformInt(1, 100)),
                              static_cast<AppId>(rng.UniformInt(101, 200))});
  }
  return in;
}

obs::CycleDecisionRecord RandomDecision(Rng& rng) {
  obs::CycleDecisionRecord d;
  const int cells = static_cast<int>(rng.UniformInt(0, 3));
  for (int c = 0; c < cells; ++c) {
    d.placement.push_back({static_cast<int>(rng.UniformInt(0, 5)),
                           static_cast<int>(rng.UniformInt(0, 3)),
                           static_cast<int>(rng.UniformInt(1, 2))});
  }
  const int allocs = static_cast<int>(rng.UniformInt(0, 4));
  for (int a = 0; a < allocs; ++a) {
    d.allocations.push_back(rng.Uniform(0.0, 10000.0));
  }
  return d;
}

obs::CycleTrace RandomCycle(Rng& rng, int cycle) {
  obs::CycleTrace t;
  if (rng.Uniform01() < 0.7) {
    t.run_id = "run" + std::to_string(rng.UniformInt(0, 9));
  }
  t.cycle = cycle;
  t.time = rng.Uniform(0.0, 1e6);
  t.avg_job_rp = rng.Uniform01() < 0.2
                     ? std::numeric_limits<double>::quiet_NaN()
                     : rng.Uniform(0.0, 1.0);
  t.min_job_rp = rng.Uniform(0.0, 1.0);
  t.num_jobs = static_cast<int>(rng.UniformInt(0, 50));
  t.running_jobs = static_cast<int>(rng.UniformInt(0, 50));
  t.queued_jobs = static_cast<int>(rng.UniformInt(0, 50));
  t.suspended_jobs = static_cast<int>(rng.UniformInt(0, 50));
  t.batch_allocation = rng.Uniform(0.0, 1e5);
  t.tx_allocation = rng.Uniform(0.0, 1e5);
  t.cluster_utilization = rng.Uniform01();
  t.starts = static_cast<int>(rng.UniformInt(0, 10));
  t.stops = static_cast<int>(rng.UniformInt(0, 10));
  t.suspends = static_cast<int>(rng.UniformInt(0, 10));
  t.resumes = static_cast<int>(rng.UniformInt(0, 10));
  t.migrations = static_cast<int>(rng.UniformInt(0, 10));
  t.failed_operations = static_cast<int>(rng.UniformInt(0, 3));
  t.evaluations = static_cast<int>(rng.UniformInt(0, 1000));
  t.shortcut = rng.Uniform01() < 0.3;
  t.solver_seconds = rng.Uniform(0.0, 10.0);
  t.cache_hits = static_cast<std::uint64_t>(rng.UniformInt(0, 1000));
  t.cache_misses = static_cast<std::uint64_t>(rng.UniformInt(0, 1000));
  t.distribute_calls = static_cast<std::uint64_t>(rng.UniformInt(0, 1000));
  t.node_health = {static_cast<int>(rng.UniformInt(0, 10)),
                   static_cast<int>(rng.UniformInt(0, 10)),
                   static_cast<int>(rng.UniformInt(0, 10)),
                   rng.Uniform(0.0, 1e5), rng.Uniform(0.0, 1e5)};
  t.rp_before = RandomVector(rng, 4);
  t.rp_after = RandomVector(rng, 4);
  t.tx_utilities = RandomVector(rng, 2);
  t.tx_allocations.resize(t.tx_utilities.size());
  for (MHz& alloc : t.tx_allocations) alloc = rng.Uniform(0.0, 1e4);
  if (rng.Uniform01() < 0.6) {
    t.input = RandomInput(rng);
    t.decision = RandomDecision(rng);
  }
  return t;
}

TEST(TraceReaderTest, SerializeParseSerializeIsByteStable) {
  // The exporter writes shortest-round-trip doubles and the reader parses
  // them back with from_chars; re-serializing a parsed trace must reproduce
  // the input byte for byte, for arbitrary (not hand-friendly) values.
  Rng rng(20260806);
  for (int iteration = 0; iteration < 50; ++iteration) {
    obs::TraceContext context;
    context.experiment = "prop" + std::to_string(iteration);
    context.seed = static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 30));
    context.control_cycle = rng.Uniform(1.0, 1000.0);
    context.build_type = "Release";
    context.git_sha = "cafef00d";
    if (rng.Uniform01() < 0.5) {
      context.run_id = "sweep" + std::to_string(rng.UniformInt(0, 99));
    }
    std::vector<obs::CycleTrace> cycles;
    const int num_cycles = static_cast<int>(rng.UniformInt(0, 3));
    for (int c = 0; c < num_cycles; ++c) cycles.push_back(RandomCycle(rng, c));

    std::ostringstream first;
    obs::WriteTraceJsonl(first, context, cycles);

    std::string error;
    const auto parsed = ParseTraceJsonl(first.str(), &error);
    ASSERT_TRUE(parsed.has_value()) << "iteration " << iteration << ": "
                                    << error << "\n" << first.str();
    EXPECT_EQ(parsed->schema_version, obs::kTraceSchemaVersion);
    ASSERT_EQ(parsed->cycles.size(), cycles.size());

    std::ostringstream second;
    obs::WriteTraceJsonl(second, parsed->context, parsed->cycles);
    EXPECT_EQ(first.str(), second.str()) << "iteration " << iteration;
  }
}

TEST(TraceReaderTest, ParsedStructsCompareEqualToOriginals) {
  // Beyond byte stability, the parsed structs must equal the originals via
  // operator== whenever no NaN is involved (NaN breaks == by design).
  Rng rng(7);
  obs::TraceContext context;
  context.experiment = "eq";
  context.seed = 1;
  context.control_cycle = 600.0;
  context.build_type = "Release";
  context.git_sha = "cafef00d";
  context.run_id = "r";
  obs::CycleTrace cycle = RandomCycle(rng, 0);
  cycle.avg_job_rp = 0.5;  // keep NaN out so operator== is meaningful
  cycle.input = RandomInput(rng);
  cycle.decision = RandomDecision(rng);

  std::ostringstream os;
  obs::WriteTraceJsonl(os, context, std::vector<obs::CycleTrace>{cycle});
  std::string error;
  const auto parsed = ParseTraceJsonl(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->cycles.size(), 1u);
  EXPECT_EQ(parsed->cycles[0].input, cycle.input);
  EXPECT_EQ(parsed->cycles[0].decision, cycle.decision);
  EXPECT_EQ(parsed->cycles[0].run_id, cycle.run_id);
}

}  // namespace
}  // namespace mwp::replay

#include "replay/replay.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment1.h"
#include "obs/cycle_trace.h"
#include "obs/trace_export.h"
#include "replay/trace_reader.h"

namespace mwp::replay {
namespace {

// Records a scaled-down Experiment 1 with --trace-full semantics, exports it
// through the real JSONL writer and parses it back — the exact pipeline
// `bench_fig2_exp1 --trace-out x.jsonl --trace-full` + `replay_apc` uses.
ParsedTrace RecordExperiment1FullTrace() {
  obs::TraceRecorder recorder;
  Experiment1Config config;
  config.num_jobs = 12;
  config.num_nodes = 4;
  config.trace = &recorder;
  config.trace_run_id = "selftest";
  config.trace_full = true;
  const Experiment1Result result = RunExperiment1(config);
  EXPECT_EQ(result.completed, 12u);

  std::ostringstream os;
  obs::WriteTraceJsonl(
      os,
      obs::MakeTraceContext("experiment1", config.seed, config.control_cycle,
                            "selftest"),
      recorder.Traces());
  std::string error;
  auto parsed = ParseTraceJsonl(os.str(), &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return std::move(*parsed);
}

// One recording serves every test below; replay never mutates it.
const ParsedTrace& FullTrace() {
  static const ParsedTrace trace = RecordExperiment1FullTrace();
  return trace;
}

// Index of a replayed cycle whose decision has at least one placement cell
// and a non-empty rp_after (i.e. a cycle where the solver actually placed
// jobs).
std::size_t BusyCycleIndex(const ParsedTrace& trace) {
  for (std::size_t i = 0; i < trace.cycles.size(); ++i) {
    const obs::CycleTrace& t = trace.cycles[i];
    if (t.input.has_value() && !t.decision->placement.empty() &&
        !t.rp_after.empty()) {
      return i;
    }
  }
  ADD_FAILURE() << "no busy cycle in recorded trace";
  return 0;
}

TEST(ReplayTest, RecordThenReplayIsBitExact) {
  // Same build, same inputs: the optimizer is deterministic, so every cycle
  // must replay to the identical placement with zero RP drift — not merely
  // within tolerance.
  const ReplayOptions options;
  const ReplayReport report = ReplayTrace(FullTrace(), options);
  EXPECT_GT(report.total_cycles, 0);
  EXPECT_EQ(report.replayed_cycles, report.total_cycles);
  EXPECT_EQ(report.skipped_cycles, 0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.regressed_cycles, 0);
  EXPECT_EQ(report.cycles_with_placement_diff, 0);
  EXPECT_EQ(report.max_rp_drift, 0.0);
  EXPECT_EQ(report.max_allocation_drift, 0.0);
  EXPECT_EQ(report.better_cycles, 0);
  EXPECT_EQ(report.worse_cycles, 0);
  for (const CycleReplayDiff& diff : report.cycles) {
    EXPECT_EQ(diff.total_change_delta(), 0) << "cycle " << diff.cycle;
    EXPECT_EQ(diff.run_id, "selftest");
  }
}

TEST(ReplayTest, ReplayIsThreadCountInvariant) {
  // The parallel candidate search must commit the same decisions as the
  // sequential one; replaying with more lanes stays bit-exact.
  ReplayOptions options;
  options.search_threads = 4;
  const ReplayReport report = ReplayTrace(FullTrace(), options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cycles_with_placement_diff, 0);
  EXPECT_EQ(report.max_rp_drift, 0.0);
}

TEST(ReplayTest, CyclesWithoutInputAreSkippedNotFailed) {
  ParsedTrace trace;
  trace.schema_version = obs::kTraceSchemaVersion;
  obs::CycleTrace bare;  // v1-style record: no input/decision
  bare.cycle = 0;
  trace.cycles.push_back(bare);

  const ReplayOptions options;
  const ReplayReport report = ReplayTrace(trace, options);
  EXPECT_EQ(report.total_cycles, 1);
  EXPECT_EQ(report.replayed_cycles, 0);
  EXPECT_EQ(report.skipped_cycles, 1);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.cycles[0].replayed);
}

TEST(ReplayTest, CorruptedPlacementCellIsDetected) {
  // Bump one recorded placement count: the replayed decision no longer
  // matches, which must regress the cycle even though the solver's own
  // objective is unchanged (verdict stays within tie tolerance).
  obs::CycleTrace cycle = FullTrace().cycles[BusyCycleIndex(FullTrace())];
  cycle.decision->placement[0].count += 1;

  const ReplayOptions options;
  const CycleReplayDiff diff = ReplayCycle(cycle, options);
  EXPECT_TRUE(diff.replayed);
  EXPECT_FALSE(diff.shape_mismatch);
  EXPECT_GE(diff.placement_cell_diffs, 1);
  EXPECT_GE(diff.total_change_delta(), 1);
  EXPECT_TRUE(diff.Regressed(options));
  EXPECT_FALSE(diff.details.empty());
}

TEST(ReplayTest, RecordedRpDriftIsDetected) {
  obs::CycleTrace cycle = FullTrace().cycles[BusyCycleIndex(FullTrace())];
  cycle.rp_after[0] += 0.5;  // pretend the recorded run did much better

  const ReplayOptions options;
  const CycleReplayDiff diff = ReplayCycle(cycle, options);
  EXPECT_TRUE(diff.replayed);
  EXPECT_GT(diff.rp_drift, options.rp_tolerance);
  EXPECT_TRUE(diff.Regressed(options));
  // 0.5 exceeds any tie tolerance: the replayed decision scores worse than
  // the (doctored) recorded one.
  EXPECT_EQ(diff.verdict, Verdict::kWorse);
}

TEST(ReplayTest, MalformedDecisionShapeIsRegressionNotCrash) {
  obs::CycleTrace cycle = FullTrace().cycles[BusyCycleIndex(FullTrace())];
  cycle.decision->allocations.pop_back();  // length != entity count

  const ReplayOptions options;
  const CycleReplayDiff diff = ReplayCycle(cycle, options);
  EXPECT_TRUE(diff.replayed);
  EXPECT_TRUE(diff.shape_mismatch);
  EXPECT_TRUE(diff.Regressed(options));

  obs::CycleTrace bad_cell = FullTrace().cycles[BusyCycleIndex(FullTrace())];
  bad_cell.decision->placement[0].node = 99;  // out of range
  const CycleReplayDiff cell_diff = ReplayCycle(bad_cell, options);
  EXPECT_TRUE(cell_diff.shape_mismatch);
  EXPECT_TRUE(cell_diff.Regressed(options));
}

TEST(ReplayTest, ReportNamesRegressedCycles) {
  ParsedTrace tampered;
  tampered.schema_version = obs::kTraceSchemaVersion;
  tampered.context = FullTrace().context;
  tampered.cycles = FullTrace().cycles;
  const std::size_t busy = BusyCycleIndex(tampered);
  tampered.cycles[busy].decision->placement[0].count += 1;

  const ReplayOptions options;
  const ReplayReport report = ReplayTrace(tampered, options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressed_cycles, 1);
  EXPECT_EQ(report.cycles_with_placement_diff, 1);

  std::ostringstream os;
  WriteReport(os, report, options);
  EXPECT_NE(os.str().find("REGRESSED"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("regressed cycle"), std::string::npos) << os.str();
}

TEST(ReplayTest, OverridesNeverRegressOnlyReport) {
  // An overridden re-run (offline tuning: different sweep budget and tie
  // tolerance) may legitimately pick different placements; the diff must be
  // reported but never fail the replay.
  ReplayOptions options;
  options.override_sweeps = 1;
  options.override_tie_tolerance = 0.5;
  ASSERT_TRUE(options.has_overrides());
  const ReplayReport report = ReplayTrace(FullTrace(), options);
  EXPECT_EQ(report.replayed_cycles, report.total_cycles);
  EXPECT_TRUE(report.ok()) << "override diffs must not count as regressions";
  EXPECT_EQ(report.regressed_cycles, 0);

  std::ostringstream os;
  WriteReport(os, report, options);
  EXPECT_NE(os.str().find("overrides"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("sweeps=1"), std::string::npos) << os.str();
}

TEST(ReplayTest, CellSizeOverrideResolvesSharded) {
  // Forcing a sharded re-solve of a monolithic recording: decisions may
  // move (cells solve locally), drift is report-only, and the replay still
  // completes every cycle feasibly.
  ReplayOptions options;
  options.override_cell_size = 2;
  const ReplayReport report = ReplayTrace(FullTrace(), options);
  EXPECT_EQ(report.replayed_cycles, report.total_cycles);
  EXPECT_TRUE(report.ok());

  // Whole-cluster cell: bit-exact with the recorded monolithic decisions,
  // even though the override makes the run report-only.
  ReplayOptions identity;
  identity.override_cell_size = 64;  // >= any recorded cluster: one cell
  const ReplayReport exact = ReplayTrace(FullTrace(), identity);
  EXPECT_TRUE(exact.ok());
  EXPECT_EQ(exact.cycles_with_placement_diff, 0);
  EXPECT_EQ(exact.max_rp_drift, 0.0);
}

TEST(ReplayTest, ShapeMismatchStillRegressesUnderOverrides) {
  // Overrides relax decision diffs, not trace integrity.
  obs::CycleTrace cycle = FullTrace().cycles[BusyCycleIndex(FullTrace())];
  cycle.decision->allocations.pop_back();
  ReplayOptions options;
  options.override_sweeps = 1;
  const CycleReplayDiff diff = ReplayCycle(cycle, options);
  EXPECT_TRUE(diff.shape_mismatch);
  EXPECT_TRUE(diff.Regressed(options));
}

TEST(ReplayTest, ShardedRecordingRoundTripsThroughReader) {
  // A trace recorded with sharding on carries the optional schema fields;
  // the reader must surface them and a plain replay must re-solve sharded
  // (bit-exact in the same build).
  obs::TraceRecorder recorder;
  Experiment1Config config;
  config.num_jobs = 12;
  config.num_nodes = 4;
  config.trace = &recorder;
  config.trace_run_id = "sharded";
  config.trace_full = true;
  config.shard_cell_size = 2;
  const Experiment1Result result = RunExperiment1(config);
  EXPECT_EQ(result.completed, 12u);

  std::ostringstream os;
  obs::WriteTraceJsonl(
      os,
      obs::MakeTraceContext("experiment1", config.seed, config.control_cycle,
                            "sharded"),
      recorder.Traces());
  std::string error;
  const auto parsed = ParseTraceJsonl(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  bool saw_sharded_cycle = false;
  for (const obs::CycleTrace& t : parsed->cycles) {
    if (t.num_cells > 0) saw_sharded_cycle = true;
    if (t.input.has_value()) {
      EXPECT_EQ(t.input->options.cell_size, 2);
    }
  }
  EXPECT_TRUE(saw_sharded_cycle);

  const ReplayOptions options;
  const ReplayReport report = ReplayTrace(*parsed, options);
  EXPECT_EQ(report.replayed_cycles, report.total_cycles);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cycles_with_placement_diff, 0);
  EXPECT_EQ(report.max_rp_drift, 0.0);
}

TEST(GoldenTraceTest, CheckedInTracesReplayWithoutPlacementDrift) {
  // Cross-commit gate: the golden traces were recorded at a known-good
  // commit; any placement difference on replay is a solver behaviour
  // change. FP tolerance is loose (goldens may be replayed by a different
  // compiler) but placement diffs must be exactly zero.
  const std::string dir = MWP_GOLDEN_TRACE_DIR;
  for (const char* name : {"exp1_small.jsonl", "node_failure.jsonl"}) {
    SCOPED_TRACE(name);
    std::string error;
    const auto trace = ParseTraceFile(dir + "/" + name, &error);
    ASSERT_TRUE(trace.has_value()) << error;
    ReplayOptions options;
    options.rp_tolerance = 1e-6;
    const ReplayReport report = ReplayTrace(*trace, options);
    EXPECT_GT(report.replayed_cycles, 0);
    EXPECT_EQ(report.cycles_with_placement_diff, 0);
    std::ostringstream os;
    WriteReport(os, report, options);
    EXPECT_TRUE(report.ok()) << os.str();
  }
}

}  // namespace
}  // namespace mwp::replay

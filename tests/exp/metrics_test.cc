#include "batch/job_metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mwp {
namespace {

std::unique_ptr<Job> CompletedJob(AppId id, Seconds submit, double factor,
                                  Seconds exec_seconds, Seconds start_at) {
  JobProfile p = JobProfile::SingleStage(exec_seconds * 1'000.0, 1'000.0,
                                         100.0);
  auto job = std::make_unique<Job>(
      id, "j" + std::to_string(id), p,
      JobGoal::FromFactor(submit, factor, p.min_execution_time()));
  job->Place(0, start_at, 0.0);
  job->SetAllocation(1'000.0);
  job->AdvanceTo(start_at, start_at + exec_seconds + 1.0);
  return job;
}

TEST(MetricsTest, CollectOutcomesBasics) {
  JobQueue q;
  q.Submit(CompletedJob(1, 0.0, 3.0, 10.0, 0.0));   // completes 10, goal 30
  q.Submit(CompletedJob(2, 0.0, 1.5, 10.0, 20.0));  // completes 30, goal 15
  const auto records = CollectOutcomes(q);
  ASSERT_EQ(records.size(), 2u);
  // Ordered by completion time.
  EXPECT_EQ(records[0].id, 1);
  EXPECT_EQ(records[1].id, 2);
  EXPECT_DOUBLE_EQ(records[0].distance_to_goal, 20.0);
  EXPECT_TRUE(records[0].met_deadline());
  EXPECT_DOUBLE_EQ(records[1].distance_to_goal, -15.0);
  EXPECT_FALSE(records[1].met_deadline());
  EXPECT_DOUBLE_EQ(records[0].goal_factor, 3.0);
}

TEST(MetricsTest, IncompleteJobsExcluded) {
  JobQueue q;
  JobProfile p = JobProfile::SingleStage(1'000.0, 100.0, 10.0);
  q.Submit(std::make_unique<Job>(9, "pending", p,
                                 JobGoal::FromFactor(0.0, 2.0, 10.0)));
  q.Submit(CompletedJob(1, 0.0, 3.0, 10.0, 0.0));
  EXPECT_EQ(CollectOutcomes(q).size(), 1u);
}

TEST(MetricsTest, LimitKeepsFirstCompletions) {
  JobQueue q;
  for (int j = 0; j < 5; ++j) {
    q.Submit(CompletedJob(j + 1, 0.0, 10.0, 5.0, j * 10.0));
  }
  const auto records = CollectOutcomes(q, 3);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.back().id, 3);
}

TEST(MetricsTest, DeadlineSatisfactionFraction) {
  JobQueue q;
  q.Submit(CompletedJob(1, 0.0, 3.0, 10.0, 0.0));   // met
  q.Submit(CompletedJob(2, 0.0, 1.5, 10.0, 20.0));  // missed
  q.Submit(CompletedJob(3, 0.0, 5.0, 10.0, 0.0));   // met
  const auto records = CollectOutcomes(q);
  EXPECT_NEAR(DeadlineSatisfaction(records), 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, DeadlineSatisfactionEmptyIsNaN) {
  EXPECT_TRUE(std::isnan(DeadlineSatisfaction({})));
}

TEST(MetricsTest, FilterByGoalFactor) {
  JobQueue q;
  q.Submit(CompletedJob(1, 0.0, 1.3, 10.0, 0.0));
  q.Submit(CompletedJob(2, 0.0, 2.5, 10.0, 0.0));
  q.Submit(CompletedJob(3, 0.0, 1.3, 10.0, 0.0));
  const auto records = CollectOutcomes(q);
  EXPECT_EQ(FilterByGoalFactor(records, 1.3).size(), 2u);
  EXPECT_EQ(FilterByGoalFactor(records, 2.5).size(), 1u);
  EXPECT_EQ(FilterByGoalFactor(records, 4.0).size(), 0u);
}

TEST(MetricsTest, DistanceSampleValues) {
  JobQueue q;
  q.Submit(CompletedJob(1, 0.0, 3.0, 10.0, 0.0));
  const auto sample = DistanceSample(CollectOutcomes(q));
  ASSERT_EQ(sample.count(), 1u);
  EXPECT_DOUBLE_EQ(sample.values()[0], 20.0);
}

TEST(MetricsTest, AchievedUtilityConsistentWithDistance) {
  JobQueue q;
  q.Submit(CompletedJob(1, 0.0, 3.0, 10.0, 0.0));
  const auto r = CollectOutcomes(q).front();
  // u = distance / relative_goal for jobs with τ_start = submit time.
  EXPECT_NEAR(r.achieved_utility, r.distance_to_goal / r.relative_goal, 1e-9);
}

}  // namespace
}  // namespace mwp

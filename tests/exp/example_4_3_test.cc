// End-to-end verification of the paper's §4.3 illustrative example: the
// cycle-by-cycle decisions of Figure 1 for both scenarios.
#include "exp/example_4_3.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

const JobCycleDetail* FindJob(const CycleStats& cycle, AppId id) {
  for (const JobCycleDetail& d : cycle.job_details) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

TEST(Example43Test, Scenario1Cycle1RunsJ1AtFullSpeed) {
  const auto result = RunExample43({.scenario = 1, .cycles = 12});
  ASSERT_GE(result.cycles.size(), 2u);
  const auto* j1 = FindJob(result.cycles[0], 1);
  ASSERT_NE(j1, nullptr);
  EXPECT_TRUE(j1->placed);
  EXPECT_NEAR(j1->allocation, 1'000.0, 5.0);
}

TEST(Example43Test, Scenario1Cycle2KeepsJ2Queued) {
  // Figure 1 S1 cycle 2: "P2 is selected, since it does not require any
  // placement changes" — J1 keeps the whole node, J2 waits.
  const auto result = RunExample43({.scenario = 1, .cycles = 12});
  const CycleStats& c2 = result.cycles[1];
  const auto* j1 = FindJob(c2, 1);
  const auto* j2 = FindJob(c2, 2);
  ASSERT_NE(j1, nullptr);
  ASSERT_NE(j2, nullptr);
  EXPECT_TRUE(j1->placed);
  EXPECT_NEAR(j1->allocation, 1'000.0, 5.0);
  EXPECT_FALSE(j2->placed);
  // Both predicted near 0.7 (the tie that favours the incumbent).
  EXPECT_NEAR(j1->predicted_utility, 0.70, 0.03);
  EXPECT_NEAR(j2->predicted_utility, 0.69, 0.03);
}

TEST(Example43Test, Scenario2Cycle2StartsJ2) {
  // Figure 1 S2 cycle 2: tightened goal → P1 equalizes at (0.65, 0.65) with
  // both jobs running at 500 MHz.
  const auto result = RunExample43({.scenario = 2, .cycles = 12});
  const CycleStats& c2 = result.cycles[1];
  const auto* j1 = FindJob(c2, 1);
  const auto* j2 = FindJob(c2, 2);
  ASSERT_NE(j1, nullptr);
  ASSERT_NE(j2, nullptr);
  EXPECT_TRUE(j1->placed);
  EXPECT_TRUE(j2->placed);
  EXPECT_NEAR(j1->allocation, 500.0, 25.0);
  EXPECT_NEAR(j2->allocation, 500.0, 25.0);
  EXPECT_NEAR(j1->predicted_utility, 0.65, 0.03);
  EXPECT_NEAR(j2->predicted_utility, 0.65, 0.03);
}

TEST(Example43Test, WorkAccountingMatchesFigureBoxes) {
  // S1 cycle 2 boxes: J1 outstanding 3,000 / done 1,000.
  const auto result = RunExample43({.scenario = 1, .cycles = 12});
  const auto* j1 = FindJob(result.cycles[1], 1);
  ASSERT_NE(j1, nullptr);
  EXPECT_NEAR(j1->work_done, 1'000.0, 5.0);
  EXPECT_NEAR(j1->outstanding, 3'000.0, 5.0);
}

TEST(Example43Test, AllJobsCompleteInBothScenarios) {
  for (int scenario : {1, 2}) {
    const auto result = RunExample43({.scenario = scenario, .cycles = 20});
    EXPECT_EQ(result.outcomes.size(), 3u) << "scenario " << scenario;
  }
}

TEST(Example43Test, J3GoalIsUnreachableWithoutImmediateStart) {
  // J3 (factor 1) needs its full 8 s at max speed from arrival; sharing the
  // node with anything makes it late. The algorithm should nonetheless keep
  // its violation small.
  const auto result = RunExample43({.scenario = 1, .cycles = 20});
  const JobOutcomeRecord* j3 = nullptr;
  for (const auto& r : result.outcomes) {
    if (r.id == 3) j3 = &r;
  }
  ASSERT_NE(j3, nullptr);
  EXPECT_GE(j3->achieved_utility, -1.0);
  EXPECT_LE(j3->achieved_utility, 0.05);
}

TEST(Example43Test, ScenariosDivergeAtCycle2) {
  const auto s1 = RunExample43({.scenario = 1, .cycles = 12});
  const auto s2 = RunExample43({.scenario = 2, .cycles = 12});
  const auto* j2_s1 = FindJob(s1.cycles[1], 2);
  const auto* j2_s2 = FindJob(s2.cycles[1], 2);
  ASSERT_NE(j2_s1, nullptr);
  ASSERT_NE(j2_s2, nullptr);
  EXPECT_NE(j2_s1->placed, j2_s2->placed);
}

TEST(Example43Test, InvalidScenarioThrows) {
  EXPECT_THROW(RunExample43({.scenario = 3, .cycles = 5}), std::logic_error);
}

}  // namespace
}  // namespace mwp

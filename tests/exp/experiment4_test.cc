#include "exp/experiment4.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

Experiment4Config WithFaults(Experiment4Mode mode) {
  Experiment4Config config;
  config.mode = mode;
  config.fault_plan = MakeExperiment4FaultPlan(config);
  return config;
}

TEST(Experiment4Test, FaultFreeRunCompletesAllJobs) {
  Experiment4Config config;  // empty fault plan
  const Experiment4Result r = RunExperiment4(config);
  EXPECT_EQ(r.crashes, 0);
  EXPECT_TRUE(r.outages.empty());
  EXPECT_TRUE(r.fault_trace.empty());
  EXPECT_DOUBLE_EQ(r.work_lost, 0.0);
  EXPECT_EQ(r.jobs_submitted, static_cast<std::size_t>(config.num_jobs));
  EXPECT_EQ(r.jobs_completed, r.jobs_submitted);
  EXPECT_FALSE(r.placement_fingerprint.empty());
}

TEST(Experiment4Test, ApcRecoversFromEveryOutage) {
  const Experiment4Result r =
      RunExperiment4(WithFaults(Experiment4Mode::kDynamicApc));
  EXPECT_EQ(r.crashes, 3);
  ASSERT_EQ(r.outages.size(), 3u);
  EXPECT_TRUE(r.all_recovered);
  EXPECT_GT(r.work_lost, 0.0);         // the mid-run crash cost real work
  EXPECT_GT(r.lost_cpu_seconds, 0.0);
  EXPECT_EQ(r.jobs_completed, r.jobs_submitted);

  // The TX-partition outage displaced instances and the out-of-band repair
  // cycles restarted some on surviving nodes (an app that already covers
  // every surviving node has nothing to restart — the distributor simply
  // re-routes its load, which the zero SLA violations below confirm).
  int displaced = 0, replaced = 0;
  for (const RepairStats& rep : r.repairs) {
    displaced += rep.tx_displaced;
    replaced += rep.tx_replaced;
  }
  EXPECT_GT(displaced, 0);
  EXPECT_GT(replaced, 0);
  EXPECT_LE(replaced, displaced);
  // Serving capacity never fell below the goal for a whole control cycle.
  EXPECT_EQ(r.sla_violations, 0);
}

TEST(Experiment4Test, ApcBeatsStaticPartitionOnRecovery) {
  const Experiment4Result apc =
      RunExperiment4(WithFaults(Experiment4Mode::kDynamicApc));
  const Experiment4Result fixed =
      RunExperiment4(WithFaults(Experiment4Mode::kStaticPartition));

  ASSERT_TRUE(apc.all_recovered);
  ASSERT_TRUE(fixed.all_recovered);
  // The headline resilience claim: dynamic placement heals strictly faster
  // than the static arrangement under the identical fault plan...
  EXPECT_LT(apc.time_to_recover.mean(), fixed.time_to_recover.mean());
  EXPECT_LT(apc.time_to_recover.max(), fixed.time_to_recover.max());
  // ...loses less batch progress (suspended/shared VMs checkpoint cheaply)
  EXPECT_LT(apc.work_lost, fixed.work_lost);
  // ...and keeps serving the transactional workload while the static TX
  // partition is dark until its nodes are restored.
  EXPECT_LT(apc.sla_violations, fixed.sla_violations);
  EXPECT_GT(fixed.sla_violations, 0);
}

TEST(Experiment4Test, EdfComparatorRecoversFastButServesNoTx) {
  const Experiment4Result r =
      RunExperiment4(WithFaults(Experiment4Mode::kEdfScheduler));
  EXPECT_EQ(r.crashes, 3);
  EXPECT_TRUE(r.all_recovered);
  EXPECT_EQ(r.jobs_completed, r.jobs_submitted);
  EXPECT_EQ(r.sla_violations, 0);  // vacuous: no transactional app at all
}

TEST(Experiment4Test, IdenticalConfigYieldsIdenticalTraceAndPlacement) {
  const Experiment4Result a =
      RunExperiment4(WithFaults(Experiment4Mode::kDynamicApc));
  const Experiment4Result b =
      RunExperiment4(WithFaults(Experiment4Mode::kDynamicApc));
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.placement_fingerprint, b.placement_fingerprint);
  ASSERT_EQ(a.outages.size(), b.outages.size());
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outages[i].time_to_recover(),
                     b.outages[i].time_to_recover());
  }
}

}  // namespace
}  // namespace mwp

// Resilience integration test — the fault pipeline end to end, at
// experiment scale. Runs in its own ctest executable labeled `resilience`
// so the Release CI lane can exclude it by label while the sanitizer lane
// runs it in full.
//
// Two guarantees are pinned here:
//   1. Determinism: the same seed and FaultPlan produce a bit-identical
//      fault trace, outage records, and final placement fingerprint across
//      repeated runs AND across optimizer thread counts.
//   2. One-repair-cycle recovery: every injected crash triggers an
//      out-of-band repair at the crash instant — checkpointed jobs are
//      rolled back and re-queued there, and transactional instances
//      displaced by the crash are restarted by that same repair, not by a
//      later periodic cycle.
#include <gtest/gtest.h>

#include "exp/experiment4.h"

namespace mwp {
namespace {

Experiment4Config ApcConfig(int search_threads) {
  Experiment4Config config;
  config.mode = Experiment4Mode::kDynamicApc;
  config.search_threads = search_threads;
  config.fault_plan = MakeExperiment4FaultPlan(config);
  return config;
}

void ExpectSameObservables(const Experiment4Result& a,
                           const Experiment4Result& b) {
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.placement_fingerprint, b.placement_fingerprint);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_DOUBLE_EQ(a.work_lost, b.work_lost);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
  ASSERT_EQ(a.outages.size(), b.outages.size());
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outages[i].crash_time, b.outages[i].crash_time);
    EXPECT_DOUBLE_EQ(a.outages[i].recovered_time, b.outages[i].recovered_time);
    EXPECT_DOUBLE_EQ(a.outages[i].batch_work_lost,
                     b.outages[i].batch_work_lost);
  }
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (std::size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.repairs[i].time, b.repairs[i].time);
    EXPECT_EQ(a.repairs[i].tx_displaced, b.repairs[i].tx_displaced);
    EXPECT_EQ(a.repairs[i].tx_replaced, b.repairs[i].tx_replaced);
    EXPECT_EQ(a.repairs[i].job_placements, b.repairs[i].job_placements);
  }
}

TEST(ResilienceIntegration, RepeatedRunsAreIdentical) {
  const Experiment4Result a = RunExperiment4(ApcConfig(0));
  const Experiment4Result b = RunExperiment4(ApcConfig(0));
  ASSERT_FALSE(a.fault_trace.empty());
  ExpectSameObservables(a, b);
}

TEST(ResilienceIntegration, ThreadCountDoesNotChangeTheRun) {
  // The parallel candidate search commits the same placements the
  // sequential loops would; faults must not break that equivalence.
  const Experiment4Result base = RunExperiment4(ApcConfig(1));
  for (const int threads : {0, 2, 4}) {
    SCOPED_TRACE("search_threads=" + std::to_string(threads));
    const Experiment4Result r = RunExperiment4(ApcConfig(threads));
    ExpectSameObservables(base, r);
  }
}

TEST(ResilienceIntegration, EveryCrashIsRepairedAtTheFaultInstant) {
  const Experiment4Result r = RunExperiment4(ApcConfig(0));
  ASSERT_TRUE(r.all_recovered);
  ASSERT_EQ(r.outages.size(), 3u);

  // An out-of-band repair cycle ran at the instant of every crash.
  for (const OutageRecord& o : r.outages) {
    bool repaired_at_crash = false;
    for (const RepairStats& rep : r.repairs) {
      if (rep.time == o.crash_time) repaired_at_crash = true;
    }
    EXPECT_TRUE(repaired_at_crash)
        << "no repair cycle at crash time " << o.crash_time;
  }

  // Checkpoint rollback happened at the crash (not at the next tick): the
  // batch-side outage lost a bounded, non-zero amount of progress — at most
  // one checkpoint interval of full-speed work per crashed job.
  const OutageRecord& batch_outage = r.outages.front();
  EXPECT_GT(batch_outage.jobs_crashed, 0);
  EXPECT_GT(batch_outage.batch_work_lost, 0.0);
  Experiment4Config config;
  EXPECT_LE(batch_outage.batch_work_lost,
            batch_outage.jobs_crashed * config.checkpoint_interval *
                config.job_max_speed);

  // The TX-partition crash displaced instances, and the repair at that same
  // instant restarted at least one of them on a surviving node.
  bool tx_repaired_in_place = false;
  for (const RepairStats& rep : r.repairs) {
    if (rep.tx_displaced > 0 && rep.tx_replaced > 0) {
      tx_repaired_in_place = true;
    }
  }
  EXPECT_TRUE(tx_repaired_in_place);
}

TEST(ResilienceIntegration, ApcStrictlyBeatsStaticPartition) {
  // The acceptance headline, pinned where the CI resilience lane runs it.
  const Experiment4Result apc = RunExperiment4(ApcConfig(0));
  Experiment4Config fixed_config;
  fixed_config.mode = Experiment4Mode::kStaticPartition;
  fixed_config.fault_plan = MakeExperiment4FaultPlan(fixed_config);
  const Experiment4Result fixed = RunExperiment4(fixed_config);

  ASSERT_TRUE(apc.all_recovered);
  ASSERT_TRUE(fixed.all_recovered);
  EXPECT_LT(apc.time_to_recover.mean(), fixed.time_to_recover.mean());
  EXPECT_LT(apc.time_to_recover.max(), fixed.time_to_recover.max());
  EXPECT_LT(apc.work_lost, fixed.work_lost);
}

}  // namespace
}  // namespace mwp

#include "sched/fcfs_scheduler.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

ClusterSpec SmallCluster(int nodes = 1) {
  return ClusterSpec::Uniform(nodes, NodeSpec{1, 1'000.0, 2'000.0});
}

std::unique_ptr<Job> MakeJob(AppId id, Seconds submit, Megacycles work,
                             MHz speed, double factor,
                             Megabytes mem = 750.0) {
  JobProfile p = JobProfile::SingleStage(work, speed, mem);
  return std::make_unique<Job>(id, "job-" + std::to_string(id), p,
                               JobGoal::FromFactor(submit, factor,
                                                   p.min_execution_time()));
}

struct Harness {
  ClusterSpec cluster;
  JobQueue queue;
  Simulation sim;
  FcfsScheduler scheduler;

  explicit Harness(int nodes = 1,
                   BaselineScheduler::Config cfg = {
                       VmCostModel::Free(), {}})
      : cluster(SmallCluster(nodes)), scheduler(&cluster, &queue, cfg) {}

  void Submit(std::unique_ptr<Job> job, Seconds at) {
    auto holder = std::make_shared<std::unique_ptr<Job>>(std::move(job));
    sim.ScheduleAt(at, [this, holder](Simulation& s) {
      queue.Submit(std::move(*holder));
      scheduler.OnJobSubmitted(s);
    });
  }
};

TEST(FcfsSchedulerTest, RunsJobsInOrder) {
  Harness h;
  h.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0), 0.0);
  h.Submit(MakeJob(2, 0.0, 4'000.0, 1'000.0, 5.0), 0.0);
  h.sim.RunUntil(100.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());

  // Memory allows both concurrently (750 + 750 < 2,000) but CPU first-fit
  // reserves 1,000 each — only one node, so they serialize.
  ASSERT_EQ(h.queue.num_completed(), 2u);
  EXPECT_NEAR(*h.queue.Find(1)->completion_time(), 4.0, 1e-6);
  EXPECT_NEAR(*h.queue.Find(2)->completion_time(), 8.0, 1e-6);
}

TEST(FcfsSchedulerTest, JobsRunAtMaxSpeed) {
  Harness h;
  h.Submit(MakeJob(1, 0.0, 2'000.0, 500.0, 5.0), 0.0);
  h.Submit(MakeJob(2, 0.0, 2'000.0, 500.0, 5.0), 0.0);
  h.sim.RunUntil(50.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  // Two 500 MHz jobs fit the 1,000 MHz node concurrently.
  ASSERT_EQ(h.queue.num_completed(), 2u);
  EXPECT_NEAR(*h.queue.Find(1)->completion_time(), 4.0, 1e-6);
  EXPECT_NEAR(*h.queue.Find(2)->completion_time(), 4.0, 1e-6);
}

TEST(FcfsSchedulerTest, HeadOfQueueBlocks) {
  Harness h;
  // Big job (memory 1,500) runs; next job (memory 1,500) can't fit; a tiny
  // job behind it must NOT backfill under strict FCFS.
  h.Submit(MakeJob(1, 0.0, 10'000.0, 1'000.0, 5.0, 1'500.0), 0.0);
  h.Submit(MakeJob(2, 0.0, 10'000.0, 1'000.0, 5.0, 1'500.0), 0.0);
  h.Submit(MakeJob(3, 0.0, 1'000.0, 1'000.0, 5.0, 100.0), 0.0);
  h.sim.RunUntil(5.0);
  EXPECT_TRUE(h.queue.Find(1)->placed());
  EXPECT_FALSE(h.queue.Find(2)->placed());
  EXPECT_FALSE(h.queue.Find(3)->placed()) << "FCFS does not backfill";
  h.sim.RunUntil(100.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  EXPECT_EQ(h.queue.num_completed(), 3u);
}

TEST(FcfsSchedulerTest, NeverPreempts) {
  Harness h;
  h.Submit(MakeJob(1, 0.0, 50'000.0, 1'000.0, 20.0, 1'500.0), 0.0);
  // Tight-deadline job arrives later; FCFS must not suspend job 1.
  h.Submit(MakeJob(2, 5.0, 1'000.0, 1'000.0, 1.1, 1'500.0), 5.0);
  h.sim.RunUntil(200.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  EXPECT_EQ(h.scheduler.changes().suspends, 0);
  EXPECT_EQ(h.scheduler.changes().migrations, 0);
  EXPECT_EQ(h.scheduler.changes().disruptive(), 0);
  EXPECT_EQ(h.queue.num_completed(), 2u);
  // Job 2 had to wait for job 1 (completion at 50 s) and misses its goal.
  EXPECT_GT(*h.queue.Find(2)->completion_time(),
            h.queue.Find(2)->goal().completion_goal);
}

TEST(FcfsSchedulerTest, FirstFitAcrossNodes) {
  Harness h(3);
  for (int j = 1; j <= 3; ++j) {
    h.Submit(MakeJob(j, 0.0, 4'000.0, 1'000.0, 5.0, 1'500.0), 0.0);
  }
  h.sim.RunUntil(1.0);
  EXPECT_EQ(h.queue.Find(1)->node(), 0);
  EXPECT_EQ(h.queue.Find(2)->node(), 1);
  EXPECT_EQ(h.queue.Find(3)->node(), 2);
}

TEST(FcfsSchedulerTest, AllowedNodesMaskRespected) {
  BaselineScheduler::Config cfg;
  cfg.costs = VmCostModel::Free();
  cfg.allowed_nodes = {2};
  Harness h(3, cfg);
  h.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0), 0.0);
  h.sim.RunUntil(1.0);
  EXPECT_EQ(h.queue.Find(1)->node(), 2);
}

TEST(FcfsSchedulerTest, BootCostCharged) {
  BaselineScheduler::Config cfg;
  cfg.costs = VmCostModel::PaperMeasured();
  Harness h(1, cfg);
  h.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0), 0.0);
  h.sim.RunUntil(50.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  ASSERT_EQ(h.queue.num_completed(), 1u);
  EXPECT_NEAR(*h.queue.Find(1)->completion_time(), 4.0 + 3.6, 1e-6);
}

TEST(FcfsSchedulerTest, DispatchOnCompletionEvent) {
  Harness h;
  h.Submit(MakeJob(1, 0.0, 1'000.0, 1'000.0, 5.0, 1'500.0), 0.0);
  h.Submit(MakeJob(2, 0.0, 1'000.0, 1'000.0, 5.0, 1'500.0), 0.0);
  h.sim.RunUntil(100.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  // Job 2 starts the moment job 1 completes (event-driven, not polled).
  EXPECT_NEAR(*h.queue.Find(1)->completion_time(), 1.0, 1e-6);
  EXPECT_NEAR(*h.queue.Find(2)->completion_time(), 2.0, 1e-6);
}

}  // namespace
}  // namespace mwp

#include "sched/static_partition.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

ClusterSpec PaperishCluster(int nodes = 5) {
  return ClusterSpec::Uniform(nodes, NodeSpec{4, 1'000.0, 16'384.0});
}

TransactionalAppSpec TxSpec(MHz saturation) {
  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "tx";
  spec.memory_per_instance = 512.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 5.0;
  spec.min_response_time = 0.2;
  spec.saturation_allocation = saturation;
  return spec;
}

TEST(StaticPartitionTest, TxAllocationCappedBySaturation) {
  const ClusterSpec cluster = PaperishCluster();
  JobQueue queue;
  // 2 nodes = 8,000 MHz > 6,000 saturation: allocation caps at saturation.
  StaticPartition p(&cluster, &queue, TxSpec(6'000.0), /*tx_nodes=*/2);
  EXPECT_DOUBLE_EQ(p.tx_allocation(), 6'000.0);
}

TEST(StaticPartitionTest, TxAllocationCappedByPartition) {
  const ClusterSpec cluster = PaperishCluster();
  JobQueue queue;
  // 1 node = 4,000 MHz < 6,000 saturation: partition is the cap.
  StaticPartition p(&cluster, &queue, TxSpec(6'000.0), /*tx_nodes=*/1);
  EXPECT_DOUBLE_EQ(p.tx_allocation(), 4'000.0);
}

TEST(StaticPartitionTest, UtilityConstantOverTime) {
  const ClusterSpec cluster = PaperishCluster();
  JobQueue queue;
  StaticPartition p(&cluster, &queue, TxSpec(6'000.0), 2);
  const Utility u = p.TxUtility(400.0);
  EXPECT_GT(u, 0.0);
  EXPECT_DOUBLE_EQ(p.TxUtility(400.0), u);
  EXPECT_GT(p.TxResponseTime(400.0), 0.0);
}

TEST(StaticPartitionTest, BatchRestrictedToItsNodes) {
  const ClusterSpec cluster = PaperishCluster(3);
  JobQueue queue;
  Simulation sim;
  StaticPartition p(&cluster, &queue, TxSpec(3'000.0), /*tx_nodes=*/1,
                    VmCostModel::Free());
  JobProfile profile = JobProfile::SingleStage(4'000.0, 1'000.0, 2'048.0);
  queue.Submit(std::make_unique<Job>(10, "j", profile,
                                     JobGoal::FromFactor(0.0, 5.0, 4.0)));
  p.OnJobSubmitted(sim);
  const Job* job = queue.Find(10);
  ASSERT_TRUE(job->placed());
  EXPECT_GE(job->node(), 1) << "node 0 belongs to the tx partition";
  sim.RunUntil(10.0);
  p.AdvanceJobsTo(sim.now());
  EXPECT_TRUE(job->completed());
}

TEST(StaticPartitionTest, BatchAllocationSumsPlacedSpeeds) {
  const ClusterSpec cluster = PaperishCluster(3);
  JobQueue queue;
  Simulation sim;
  StaticPartition p(&cluster, &queue, TxSpec(3'000.0), 1, VmCostModel::Free());
  JobProfile profile = JobProfile::SingleStage(40'000.0, 1'000.0, 2'048.0);
  queue.Submit(std::make_unique<Job>(10, "a", profile,
                                     JobGoal::FromFactor(0.0, 5.0, 40.0)));
  queue.Submit(std::make_unique<Job>(11, "b", profile,
                                     JobGoal::FromFactor(0.0, 5.0, 40.0)));
  p.OnJobSubmitted(sim);
  EXPECT_DOUBLE_EQ(p.BatchAllocation(), 2'000.0);
}

TEST(StaticPartitionTest, DegenerateSplitsRejected) {
  const ClusterSpec cluster = PaperishCluster(2);
  JobQueue queue;
  EXPECT_THROW(StaticPartition(&cluster, &queue, TxSpec(1'000.0), 0),
               std::logic_error);
  EXPECT_THROW(StaticPartition(&cluster, &queue, TxSpec(1'000.0), 2),
               std::logic_error);
}

TEST(StaticPartitionTest, NodeCountsExposed) {
  const ClusterSpec cluster = PaperishCluster(5);
  JobQueue queue;
  StaticPartition p(&cluster, &queue, TxSpec(1'000.0), 2);
  EXPECT_EQ(p.tx_nodes(), 2);
  EXPECT_EQ(p.batch_nodes(), 3);
}

}  // namespace
}  // namespace mwp

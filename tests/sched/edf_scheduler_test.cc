#include "sched/edf_scheduler.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

ClusterSpec SmallCluster(int nodes = 1) {
  return ClusterSpec::Uniform(nodes, NodeSpec{1, 1'000.0, 2'000.0});
}

std::unique_ptr<Job> MakeJob(AppId id, Seconds submit, Megacycles work,
                             MHz speed, double factor,
                             Megabytes mem = 1'500.0) {
  JobProfile p = JobProfile::SingleStage(work, speed, mem);
  return std::make_unique<Job>(id, "job-" + std::to_string(id), p,
                               JobGoal::FromFactor(submit, factor,
                                                   p.min_execution_time()));
}

struct Harness {
  ClusterSpec cluster;
  JobQueue queue;
  Simulation sim;
  EdfScheduler scheduler;

  explicit Harness(int nodes = 1,
                   BaselineScheduler::Config cfg = {VmCostModel::Free(), {}})
      : cluster(SmallCluster(nodes)), scheduler(&cluster, &queue, cfg) {}

  void Submit(std::unique_ptr<Job> job, Seconds at) {
    auto holder = std::make_shared<std::unique_ptr<Job>>(std::move(job));
    sim.ScheduleAt(at, [this, holder](Simulation& s) {
      queue.Submit(std::move(*holder));
      scheduler.OnJobSubmitted(s);
    });
  }
};

TEST(EdfSchedulerTest, SingleJobRuns) {
  Harness h;
  h.Submit(MakeJob(1, 0.0, 4'000.0, 1'000.0, 5.0), 0.0);
  h.sim.RunUntil(10.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  ASSERT_EQ(h.queue.num_completed(), 1u);
  EXPECT_NEAR(*h.queue.Find(1)->completion_time(), 4.0, 1e-6);
}

TEST(EdfSchedulerTest, PreemptsForEarlierDeadline) {
  Harness h;
  // Relaxed job running; tight job arrives and has the earlier deadline.
  h.Submit(MakeJob(1, 0.0, 50'000.0, 1'000.0, 20.0), 0.0);
  h.Submit(MakeJob(2, 5.0, 1'000.0, 1'000.0, 1.5), 5.0);
  h.sim.RunUntil(5.5);
  EXPECT_TRUE(h.queue.Find(2)->placed()) << "urgent job took the slot";
  EXPECT_EQ(h.queue.Find(1)->status(), JobStatus::kSuspended);
  EXPECT_GE(h.scheduler.changes().suspends, 1);

  h.sim.RunUntil(200.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  EXPECT_EQ(h.queue.num_completed(), 2u);
  // Urgent job met its deadline thanks to preemption.
  EXPECT_LE(*h.queue.Find(2)->completion_time(),
            h.queue.Find(2)->goal().completion_goal);
  EXPECT_GE(h.scheduler.changes().resumes, 1);
}

TEST(EdfSchedulerTest, NoPreemptionWhenCapacitySuffices) {
  Harness h(2);
  h.Submit(MakeJob(1, 0.0, 10'000.0, 1'000.0, 5.0), 0.0);
  h.Submit(MakeJob(2, 1.0, 10'000.0, 1'000.0, 2.0), 1.0);
  h.sim.RunUntil(50.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  EXPECT_EQ(h.scheduler.changes().disruptive(), 0);
  EXPECT_EQ(h.queue.num_completed(), 2u);
}

TEST(EdfSchedulerTest, RunningJobKeepsNodeWhenStillScheduled) {
  Harness h(2);
  h.Submit(MakeJob(1, 0.0, 10'000.0, 1'000.0, 5.0), 0.0);
  h.sim.RunUntil(1.0);
  const NodeId original = h.queue.Find(1)->node();
  h.Submit(MakeJob(2, 1.0, 5'000.0, 1'000.0, 1.2), 1.0);
  h.sim.RunUntil(2.0);
  EXPECT_EQ(h.queue.Find(1)->node(), original) << "no gratuitous migration";
  EXPECT_EQ(h.scheduler.changes().migrations, 0);
}

TEST(EdfSchedulerTest, DeadlineOrderUnderOverload) {
  Harness h;
  // Three jobs, one slot. Deadlines: job 2 < job 3 < job 1.
  h.Submit(MakeJob(1, 0.0, 8'000.0, 1'000.0, 10.0), 0.0);  // goal 80
  h.Submit(MakeJob(2, 0.0, 8'000.0, 1'000.0, 2.0), 0.0);   // goal 16
  h.Submit(MakeJob(3, 0.0, 8'000.0, 1'000.0, 4.0), 0.0);   // goal 32
  h.sim.RunUntil(100.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  ASSERT_EQ(h.queue.num_completed(), 3u);
  EXPECT_LT(*h.queue.Find(2)->completion_time(),
            *h.queue.Find(3)->completion_time());
  EXPECT_LT(*h.queue.Find(3)->completion_time(),
            *h.queue.Find(1)->completion_time());
}

TEST(EdfSchedulerTest, ChurnsMoreThanFcfsUnderLoad) {
  // Qualitative Figure 4 check at unit scale: EDF preempts, so its
  // disruptive change count is positive under overload.
  Harness h;
  for (int j = 0; j < 6; ++j) {
    // Interleaved tight/loose deadlines force repeated preemption.
    const double factor = (j % 2 == 0) ? 8.0 : 1.5;
    h.Submit(MakeJob(j + 1, j * 2.0, 6'000.0, 1'000.0, factor), j * 2.0);
  }
  h.sim.RunUntil(500.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  EXPECT_EQ(h.queue.num_completed(), 6u);
  EXPECT_GT(h.scheduler.changes().disruptive(), 0);
}

TEST(EdfSchedulerTest, SuspendResumeCostsCharged) {
  BaselineScheduler::Config cfg;
  cfg.costs = VmCostModel::PaperMeasured();
  Harness h(1, cfg);
  h.Submit(MakeJob(1, 0.0, 100'000.0, 1'000.0, 20.0), 0.0);
  h.Submit(MakeJob(2, 10.0, 1'000.0, 1'000.0, 1.5), 10.0);
  h.sim.RunUntil(1'000.0);
  h.scheduler.AdvanceJobsTo(h.sim.now());
  ASSERT_EQ(h.queue.num_completed(), 2u);
  // Job 1: 100 s of work + boot + suspend/resume overhead pushes completion
  // past the cost-free 101 s.
  EXPECT_GT(*h.queue.Find(1)->completion_time(), 101.0 + 3.6);
}

}  // namespace
}  // namespace mwp

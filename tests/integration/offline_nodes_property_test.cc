// Property tests: node health must gate every placement path. Whatever the
// mix of offline/degraded nodes, placed jobs and queued work, neither the
// optimizer's placements nor the load distributor's CPU assignments may
// touch an offline node, and no node may be driven past its available
// (health-scaled) capacity.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "core/load_distributor.h"
#include "core/placement_optimizer.h"
#include "core/snapshot.h"
#include "web/transactional_app.h"

namespace mwp {
namespace {

struct Scenario {
  ClusterSpec cluster;
  std::vector<JobProfile> profiles;
  std::unique_ptr<TransactionalApp> tx;
  std::vector<JobView> jobs;
  std::vector<TxView> tx_views;

  PlacementSnapshot Snapshot() const {
    return PlacementSnapshot(&cluster, 0.0, 600.0, jobs, tx_views);
  }
};

Scenario RandomScenario(Rng& rng) {
  Scenario s;
  const int nodes = static_cast<int>(rng.UniformInt(3, 7));
  s.cluster = ClusterSpec::Uniform(nodes, NodeSpec{2, 1'000.0, 4'000.0});

  // Random health overlay, keeping at least two nodes online.
  std::vector<NodeId> online;
  for (NodeId n = 0; n < nodes; ++n) {
    const double roll = rng.Uniform01();
    if (roll < 0.35) {
      s.cluster.SetNodeOffline(n);
    } else if (roll < 0.5) {
      s.cluster.SetNodeDegraded(n, rng.Uniform(0.3, 0.9));
      online.push_back(n);
    } else {
      online.push_back(n);
    }
  }
  while (online.size() < 2) {
    const NodeId n = static_cast<NodeId>(rng.UniformInt(0, nodes - 1));
    if (!s.cluster.node_online(n)) {
      s.cluster.SetNodeOnline(n);
      online.push_back(n);
    }
  }

  // Jobs: some already placed (on online nodes, within memory), some queued.
  const int num_jobs = static_cast<int>(rng.UniformInt(2, 8));
  s.profiles.reserve(static_cast<std::size_t>(num_jobs));
  std::vector<int> instances_on(static_cast<std::size_t>(nodes), 0);
  for (int j = 0; j < num_jobs; ++j) {
    s.profiles.push_back(JobProfile::SingleStage(
        rng.Uniform(500'000.0, 3'000'000.0), rng.Uniform(800.0, 2'000.0),
        rng.Uniform(400.0, 1'000.0)));
  }
  for (int j = 0; j < num_jobs; ++j) {
    JobView v;
    v.id = 100 + j;
    v.profile = &s.profiles[static_cast<std::size_t>(j)];
    v.goal = JobGoal::FromFactor(rng.Uniform(-2'000.0, 0.0), 3.0,
                                 s.profiles[static_cast<std::size_t>(j)]
                                     .min_execution_time());
    v.memory = s.profiles[static_cast<std::size_t>(j)].stage(0).memory;
    v.max_speed = s.profiles[static_cast<std::size_t>(j)].stage(0).max_speed;
    if (rng.Uniform01() < 0.6) {
      // Host on a random online node with room (3 x 1,000 MB fits in 4 GB).
      const NodeId host =
          online[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<int>(online.size()) - 1))];
      if (instances_on[static_cast<std::size_t>(host)] < 3) {
        v.status = JobStatus::kRunning;
        v.current_node = host;
        v.work_done = rng.Uniform(0.0, 400'000.0);
        ++instances_on[static_cast<std::size_t>(host)];
      } else {
        v.status = JobStatus::kNotStarted;
        v.place_overhead = 3.6;
      }
    } else {
      v.status = JobStatus::kNotStarted;
      v.place_overhead = 3.6;
    }
    s.jobs.push_back(v);
  }

  // One transactional app with instances on a prefix of the online nodes.
  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "tx";
  spec.memory_per_instance = 300.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.1;
  spec.saturation_allocation = 2'000.0;
  s.tx = std::make_unique<TransactionalApp>(spec);
  TxView tv;
  tv.id = spec.id;
  tv.app = s.tx.get();
  tv.arrival_rate = rng.Uniform(100.0, 1'200.0);
  tv.memory = spec.memory_per_instance;
  tv.max_instances = spec.max_instances;
  const int tx_instances =
      static_cast<int>(rng.UniformInt(1, static_cast<int>(online.size())));
  for (int k = 0; k < tx_instances; ++k) {
    tv.current_nodes.push_back(online[static_cast<std::size_t>(k)]);
  }
  s.tx_views.push_back(tv);
  return s;
}

class OfflineNodesProperty : public ::testing::TestWithParam<int> {};

TEST_P(OfflineNodesProperty, NoPathTouchesAnOfflineNode) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7'919);
  for (int trial = 0; trial < 10; ++trial) {
    const Scenario s = RandomScenario(rng);
    const PlacementSnapshot snap = s.Snapshot();
    ASSERT_TRUE(snap.IsFeasible(snap.current_placement()))
        << "seed " << GetParam() << " trial " << trial;

    PlacementOptimizer optimizer(&snap);
    const auto result = optimizer.Optimize();
    EXPECT_TRUE(snap.IsFeasible(result.placement));
    for (NodeId n = 0; n < s.cluster.num_nodes(); ++n) {
      if (s.cluster.node_online(n)) continue;
      for (int e = 0; e < snap.num_entities(); ++e) {
        EXPECT_EQ(result.placement.at(e, n), 0)
            << "entity " << e << " placed on offline node " << n << " (seed "
            << GetParam() << " trial " << trial << ")";
      }
    }

    const LoadDistributor distributor(&snap);
    const DistributionResult dist = distributor.Distribute(result.placement);
    for (NodeId n = 0; n < s.cluster.num_nodes(); ++n) {
      MHz node_load = 0.0;
      for (int e = 0; e < snap.num_entities(); ++e) {
        const MHz load = dist.loads.at(e, n);
        EXPECT_GE(load, 0.0);
        if (!s.cluster.node_online(n)) {
          EXPECT_EQ(load, 0.0)
              << "entity " << e << " given CPU on offline node " << n
              << " (seed " << GetParam() << " trial " << trial << ")";
        }
        node_load += load;
      }
      // Degraded nodes expose scaled capacity; offline nodes expose zero.
      EXPECT_LE(node_load, s.cluster.available_cpu(n) + 1e-6)
          << "node " << n << " over available capacity (seed " << GetParam()
          << " trial " << trial << ")";
    }
  }
}

TEST_P(OfflineNodesProperty, SnapshotFreezesHealthAtCaptureTime) {
  // Mutating the live cluster after capture must not change what the
  // optimizer reasons about: the snapshot's availability view is frozen.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104'729);
  Scenario s = RandomScenario(rng);
  const PlacementSnapshot snap = s.Snapshot();
  std::vector<bool> frozen;
  for (NodeId n = 0; n < s.cluster.num_nodes(); ++n) {
    frozen.push_back(snap.NodeOnline(n));
  }
  for (NodeId n = 0; n < s.cluster.num_nodes(); ++n) {
    if (s.cluster.node_online(n)) s.cluster.SetNodeOffline(n);
  }
  for (NodeId n = 0; n < s.cluster.num_nodes(); ++n) {
    EXPECT_EQ(snap.NodeOnline(n), frozen[static_cast<std::size_t>(n)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineNodesProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mwp

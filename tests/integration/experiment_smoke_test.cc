// Scaled-down smoke runs of the three paper experiments: the full-size
// parameter sets run in the bench binaries; here we verify the harness
// machinery end-to-end with small workloads.
#include <gtest/gtest.h>

#include "exp/experiment1.h"
#include "exp/experiment2.h"
#include "exp/experiment3.h"

namespace mwp {
namespace {

TEST(Experiment1SmokeTest, SmallRunCompletesAndPredicts) {
  Experiment1Config cfg;
  cfg.num_nodes = 4;
  cfg.num_jobs = 30;
  cfg.mean_interarrival = 1'000.0;
  cfg.seed = 1;
  const auto result = RunExperiment1(cfg);
  EXPECT_EQ(result.completed, 30u);
  EXPECT_FALSE(result.hypothetical_rp.empty());
  EXPECT_EQ(result.completion_rp.size(), 30u);
  // Identical jobs: optimal policy makes no disruptive changes (§5.1).
  EXPECT_EQ(result.disruptive_changes, 0);
  // Max achievable RP is 0.63; predictions must respect the bound.
  for (const auto& pt : result.hypothetical_rp.points()) {
    EXPECT_LE(pt.value, 0.631);
  }
  for (const auto& r : result.outcomes) {
    EXPECT_LE(r.achieved_utility, 0.631);
  }
}

TEST(Experiment1SmokeTest, HypotheticalPredictsCompletionUtility) {
  // Under light load every job should achieve close to the 0.63 bound, and
  // the prediction should agree with the realized value.
  Experiment1Config cfg;
  cfg.num_nodes = 4;
  cfg.num_jobs = 12;
  cfg.mean_interarrival = 4'000.0;  // no queueing at all
  cfg.seed = 2;
  const auto result = RunExperiment1(cfg);
  ASSERT_EQ(result.completed, 12u);
  for (const auto& r : result.outcomes) {
    EXPECT_NEAR(r.achieved_utility, 0.63, 0.02);
  }
  double avg_pred = 0.0;
  for (const auto& pt : result.hypothetical_rp.points()) {
    avg_pred += pt.value;
  }
  avg_pred /= static_cast<double>(result.hypothetical_rp.size());
  EXPECT_NEAR(avg_pred, 0.63, 0.03);
}

class Experiment2SmokeTest
    : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(Experiment2SmokeTest, SmallRunProducesOutcomes) {
  Experiment2Config cfg;
  cfg.num_nodes = 4;
  cfg.completed_jobs_target = 40;
  cfg.mean_interarrival = 400.0;
  cfg.scheduler = GetParam();
  cfg.seed = 3;
  const auto result = RunExperiment2(cfg);
  ASSERT_EQ(result.outcomes.size(), 40u);
  EXPECT_GE(result.deadline_satisfaction, 0.0);
  EXPECT_LE(result.deadline_satisfaction, 1.0);
  if (GetParam() == SchedulerKind::kFcfs) {
    EXPECT_EQ(result.disruptive_changes, 0) << "FCFS never reconfigures";
  }
  // Same seed → same workload: outcomes exist for each goal factor class.
  const auto f13 = FilterByGoalFactor(result.outcomes, 1.3);
  const auto f25 = FilterByGoalFactor(result.outcomes, 2.5);
  const auto f40 = FilterByGoalFactor(result.outcomes, 4.0);
  EXPECT_EQ(f13.size() + f25.size() + f40.size(), result.outcomes.size());
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, Experiment2SmokeTest,
                         ::testing::Values(SchedulerKind::kApc,
                                           SchedulerKind::kEdf,
                                           SchedulerKind::kFcfs),
                         [](const auto& info) {
                           return std::string(ToString(info.param));
                         });

TEST(Experiment2SmokeTest, SchedulerKindNames) {
  EXPECT_STREQ(ToString(SchedulerKind::kApc), "APC");
  EXPECT_STREQ(ToString(SchedulerKind::kEdf), "EDF");
  EXPECT_STREQ(ToString(SchedulerKind::kFcfs), "FCFS");
}

TEST(Experiment3SmokeTest, DynamicModeSharesResources) {
  Experiment3Config cfg;
  cfg.num_nodes = 6;
  cfg.duration = 20'000.0;
  cfg.burst_interarrival = 1'200.0;
  cfg.ease_time = 15'000.0;
  cfg.tx_arrival_rate = 500.0;
  cfg.tx_saturation = 30'000.0;  // ~2 nodes' worth on the small cluster
  cfg.seed = 4;
  cfg.mode = Experiment3Mode::kDynamicApc;
  const auto result = RunExperiment3(cfg);
  EXPECT_GT(result.jobs_submitted, 0u);
  EXPECT_FALSE(result.tx_rp.empty());
  EXPECT_FALSE(result.tx_alloc.empty());
  // TX allocation bounded by its saturation.
  for (const auto& pt : result.tx_alloc.points()) {
    EXPECT_LE(pt.value, 30'000.0 + 1.0);
  }
}

TEST(Experiment3SmokeTest, StaticModesUseFixedTxAllocation) {
  for (auto mode : {Experiment3Mode::kStatic9Tx16Lr,
                    Experiment3Mode::kStatic6Tx19Lr}) {
    Experiment3Config cfg;
    cfg.duration = 10'000.0;
    cfg.burst_interarrival = 2'000.0;
    cfg.ease_time = 8'000.0;
    cfg.seed = 5;
    cfg.mode = mode;
    const auto result = RunExperiment3(cfg);
    ASSERT_FALSE(result.tx_alloc.empty());
    const double first = result.tx_alloc.points().front().value;
    for (const auto& pt : result.tx_alloc.points()) {
      EXPECT_DOUBLE_EQ(pt.value, first) << ToString(mode);
    }
    const int tx_nodes = mode == Experiment3Mode::kStatic9Tx16Lr ? 9 : 6;
    EXPECT_LE(first, tx_nodes * 15'600.0 + 1.0);
  }
}

TEST(Experiment3SmokeTest, NineNodePartitionSatisfiesTx) {
  Experiment3Config cfg;
  cfg.duration = 5'000.0;
  cfg.burst_interarrival = 2'000.0;
  cfg.seed = 6;
  cfg.mode = Experiment3Mode::kStatic9Tx16Lr;
  const auto result = RunExperiment3(cfg);
  // 9 nodes > saturation: the paper's "maximum achievable" 0.66.
  for (const auto& pt : result.tx_rp.points()) {
    EXPECT_NEAR(pt.value, 0.66, 1e-6);
  }
}

TEST(Experiment3SmokeTest, SixNodePartitionDegradesTx) {
  Experiment3Config cfg;
  cfg.duration = 5'000.0;
  cfg.burst_interarrival = 2'000.0;
  cfg.seed = 7;
  cfg.mode = Experiment3Mode::kStatic6Tx19Lr;
  const auto result = RunExperiment3(cfg);
  for (const auto& pt : result.tx_rp.points()) {
    EXPECT_LT(pt.value, 0.60);
    EXPECT_GT(pt.value, 0.0);
  }
}

TEST(Experiment3SmokeTest, ModeNames) {
  EXPECT_STREQ(ToString(Experiment3Mode::kDynamicApc), "APC dynamic sharing");
  EXPECT_STREQ(ToString(Experiment3Mode::kStatic9Tx16Lr), "static TX=9 LR=16");
  EXPECT_STREQ(ToString(Experiment3Mode::kStatic6Tx19Lr), "static TX=6 LR=19");
}

}  // namespace
}  // namespace mwp

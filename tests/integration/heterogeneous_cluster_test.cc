// Integration: heterogeneous machines and multiple transactional apps.
//
// §3.1: "a set of heterogeneous physical machines". These tests drive the
// whole stack — snapshot, distributor (flow routing), optimizer, controller
// — on clusters whose nodes differ in CPU and memory, and with several
// transactional applications contending at once.
#include <gtest/gtest.h>

#include <algorithm>

#include "batch/job_queue.h"
#include "common/rng.h"
#include "core/apc_controller.h"
#include "web/workload_generator.h"

namespace mwp {
namespace {

std::unique_ptr<Job> MakeJob(AppId id, Seconds submit, Megacycles work,
                             MHz speed, double factor, Megabytes mem) {
  JobProfile p = JobProfile::SingleStage(work, speed, mem);
  return std::make_unique<Job>(id, "job-" + std::to_string(id), p,
                               JobGoal::FromFactor(submit, factor,
                                                   p.min_execution_time()));
}

ApcController::Config FastConfig() {
  ApcController::Config cfg;
  cfg.control_cycle = 10.0;
  cfg.costs = VmCostModel::Free();
  return cfg;
}

TEST(HeterogeneousClusterTest, BigJobNeedsTheBigNode) {
  // Node 0 is small (1 GB), node 1 is big (8 GB). A 4 GB job fits only on
  // node 1; a small job can go anywhere.
  const ClusterSpec cluster({NodeSpec{1, 1'000.0, 1'024.0},
                             NodeSpec{4, 1'000.0, 8'192.0}});
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  queue.Submit(MakeJob(1, 0.0, 20'000.0, 2'000.0, 3.0, /*mem=*/4'096.0));
  queue.Submit(MakeJob(2, 0.0, 10'000.0, 1'000.0, 3.0, /*mem=*/512.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(5.0);  // before either job can complete
  EXPECT_EQ(queue.Find(1)->node(), 1);
  EXPECT_TRUE(queue.Find(2)->placed());
  sim.RunUntil(100.0);
  controller.AdvanceJobsTo(sim.now());
  EXPECT_EQ(queue.num_completed(), 2u);
}

TEST(HeterogeneousClusterTest, FastNodeFinishesMoreWork) {
  // Same memory, very different CPU: two identical jobs pinned by capacity
  // to different nodes complete at speeds matching their hosts.
  const ClusterSpec cluster({NodeSpec{1, 500.0, 4'096.0},
                             NodeSpec{1, 2'000.0, 4'096.0}});
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  // Each job can use up to 2,000 MHz; memory allows one per node.
  queue.Submit(MakeJob(1, 0.0, 20'000.0, 2'000.0, 10.0, 3'000.0));
  queue.Submit(MakeJob(2, 0.0, 20'000.0, 2'000.0, 10.0, 3'000.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(200.0);
  controller.AdvanceJobsTo(sim.now());
  ASSERT_EQ(queue.num_completed(), 2u);
  // One finished at ~10 s (2,000 MHz), the other at ~40 s (500 MHz).
  std::vector<Seconds> times = {*queue.Find(1)->completion_time(),
                                *queue.Find(2)->completion_time()};
  std::sort(times.begin(), times.end());
  EXPECT_NEAR(times[0], 10.0, 1.0);
  EXPECT_NEAR(times[1], 40.0, 2.0);
}

TEST(HeterogeneousClusterTest, TwoTxAppsShareByNeed) {
  // Two transactional apps on a 2-node cluster; app B carries four times
  // app A's load. Equalizing relative performance gives B more CPU.
  const ClusterSpec cluster = ClusterSpec::Uniform(2, NodeSpec{2, 1'000.0,
                                                               8'192.0});
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  auto make_spec = [](AppId id, MHz sat) {
    TransactionalAppSpec spec;
    spec.id = id;
    spec.name = "tx-" + std::to_string(id);
    spec.memory_per_instance = 512.0;
    spec.response_time_goal = 1.0;
    spec.demand_per_request = 2.0;
    spec.min_response_time = 0.1;
    spec.saturation_allocation = sat;
    return spec;
  };
  controller.AddTransactionalApp(make_spec(1, 1'500.0),
                                 std::make_shared<ConstantRate>(200.0));
  controller.AddTransactionalApp(make_spec(2, 3'000.0),
                                 std::make_shared<ConstantRate>(800.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(50.0);
  const CycleStats& c = controller.cycles().back();
  ASSERT_EQ(c.tx_allocations.size(), 2u);
  // Combined saturation demand (4,500) exceeds capacity (4,000): the
  // distributor equalizes their relative performance, with the loaded app
  // taking the larger share.
  EXPECT_GT(c.tx_allocations[1], 2.0 * c.tx_allocations[0] - 600.0);
  EXPECT_LE(c.tx_allocations[0] + c.tx_allocations[1], 4'000.0 + 1.0);
  EXPECT_NEAR(c.tx_utilities[0], c.tx_utilities[1], 0.02);
}

TEST(HeterogeneousClusterTest, TwoTxAppsUnderContentionEqualize) {
  // One 2,000 MHz node; both apps want more than half. The distributor's
  // flow must split the node so neither is starved and utilities are close.
  const ClusterSpec cluster = ClusterSpec::Uniform(1, NodeSpec{2, 1'000.0,
                                                               8'192.0});
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  auto make_spec = [](AppId id) {
    TransactionalAppSpec spec;
    spec.id = id;
    spec.name = "tx-" + std::to_string(id);
    spec.memory_per_instance = 512.0;
    spec.response_time_goal = 1.0;
    spec.demand_per_request = 2.0;
    spec.min_response_time = 0.1;
    spec.saturation_allocation = 1'600.0;
    return spec;
  };
  controller.AddTransactionalApp(make_spec(1),
                                 std::make_shared<ConstantRate>(400.0));
  controller.AddTransactionalApp(make_spec(2),
                                 std::make_shared<ConstantRate>(400.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(50.0);
  const CycleStats& c = controller.cycles().back();
  EXPECT_GT(c.tx_allocations[0], 800.0);
  EXPECT_GT(c.tx_allocations[1], 800.0);
  EXPECT_LE(c.tx_allocations[0] + c.tx_allocations[1], 2'000.0 + 1.0);
  EXPECT_NEAR(c.tx_utilities[0], c.tx_utilities[1], 0.05);
}

TEST(HeterogeneousClusterTest, MixedClusterExperimentDrains) {
  // A ragtag cluster: different core counts, speeds, memory. A burst of
  // varied jobs and one web app must all be served without capacity
  // violations.
  const ClusterSpec cluster({NodeSpec{1, 800.0, 2'048.0},
                             NodeSpec{2, 1'500.0, 4'096.0},
                             NodeSpec{4, 2'400.0, 16'384.0}});
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  TransactionalAppSpec web;
  web.id = 1;
  web.name = "web";
  web.memory_per_instance = 256.0;
  web.response_time_goal = 1.0;
  web.demand_per_request = 2.0;
  web.min_response_time = 0.1;
  web.saturation_allocation = 2'000.0;
  controller.AddTransactionalApp(web, std::make_shared<ConstantRate>(500.0));
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    const Seconds at = 5.0 * i;
    sim.ScheduleAt(at, [&queue, &controller, &rng, i](Simulation& s) {
      queue.Submit(MakeJob(100 + i, s.now(), rng.Uniform(2'000.0, 30'000.0),
                           rng.Uniform(400.0, 2'400.0),
                           rng.Uniform(1.5, 4.0),
                           rng.Uniform(256.0, 3'000.0)));
      controller.OnJobSubmitted(s);
    });
  }
  controller.Attach(sim, 0.0);
  sim.RunUntil(500.0);
  controller.AdvanceJobsTo(sim.now());
  EXPECT_EQ(queue.num_completed(), 12u);
  for (const CycleStats& c : controller.cycles()) {
    EXPECT_LE(c.cluster_utilization, 1.0 + 1e-6);
  }
}

}  // namespace
}  // namespace mwp

// Property sweep: controller invariants under randomized mixed workloads.
//
// For a matrix of seeds and workload intensities, run the full control loop
// and assert the invariants that must hold regardless of the workload:
// capacity is never oversubscribed, jobs never run above their stage caps,
// every job eventually completes when capacity suffices, accounting is
// internally consistent, and runs are bit-for-bit repeatable.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "batch/job_queue.h"
#include "common/rng.h"
#include "core/apc_controller.h"
#include "web/workload_generator.h"

namespace mwp {
namespace {

struct RandomRun {
  ClusterSpec cluster;
  JobQueue queue;
  Simulation sim;
  std::unique_ptr<ApcController> controller;
  int submitted = 0;

  RandomRun(std::uint64_t seed, double intensity) {
    Rng rng(seed);
    const int nodes = static_cast<int>(rng.UniformInt(2, 4));
    cluster = ClusterSpec::Uniform(
        nodes, NodeSpec{2, rng.Uniform(800.0, 1'500.0), 8'192.0});

    ApcController::Config cfg;
    cfg.control_cycle = 20.0;
    cfg.costs = rng.Uniform01() < 0.5 ? VmCostModel::Free()
                                      : VmCostModel::PaperMeasured();
    controller = std::make_unique<ApcController>(&cluster, &queue, cfg);

    if (rng.Uniform01() < 0.5) {
      TransactionalAppSpec web;
      web.id = 1;
      web.name = "web";
      web.memory_per_instance = rng.Uniform(128.0, 1'024.0);
      web.response_time_goal = 1.0;
      web.demand_per_request = rng.Uniform(1.0, 4.0);
      web.min_response_time = 0.1;
      web.saturation_allocation = rng.Uniform(800.0, 2'500.0);
      controller->AddTransactionalApp(
          web, std::make_shared<ConstantRate>(rng.Uniform(50.0, 400.0)));
    }

    const int jobs = static_cast<int>(rng.UniformInt(4, 14));
    submitted = jobs;
    const double gap = 40.0 / intensity;
    for (int i = 0; i < jobs; ++i) {
      const Seconds at = gap * i;
      const Megacycles work = rng.Uniform(2'000.0, 40'000.0);
      const MHz speed = rng.Uniform(300.0, 1'500.0);
      const Megabytes mem = rng.Uniform(256.0, 3'500.0);
      const double factor = rng.Uniform(1.3, 6.0);
      sim.ScheduleAt(at, [this, i, work, speed, mem, factor](Simulation& s) {
        JobProfile p = JobProfile::SingleStage(work, speed, mem);
        queue.Submit(std::make_unique<Job>(
            100 + i, "job", p,
            JobGoal::FromFactor(s.now(), factor, p.min_execution_time())));
        controller->OnJobSubmitted(s);
      });
    }
    controller->Attach(sim, 0.0);
  }

  void Run(Seconds horizon) {
    sim.RunUntil(horizon);
    controller->AdvanceJobsTo(sim.now());
  }
};

class ControllerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ControllerPropertyTest, InvariantsHold) {
  const auto [seed, intensity_pct] = GetParam();
  const double intensity = intensity_pct / 100.0;
  RandomRun run(static_cast<std::uint64_t>(seed), intensity);
  run.Run(4'000.0);

  // Invariant 1: every job completed (horizon is generous vs total work).
  EXPECT_EQ(run.queue.num_completed(),
            static_cast<std::size_t>(run.submitted))
      << "seed " << seed;

  for (const CycleStats& c : run.controller->cycles()) {
    // Invariant 2: capacity never oversubscribed.
    EXPECT_LE(c.cluster_utilization, 1.0 + 1e-6);
    EXPECT_GE(c.batch_allocation, -1e-9);
    EXPECT_GE(c.tx_allocation, -1e-9);
    // Invariant 3: job status counts account for every incomplete job.
    EXPECT_EQ(c.running_jobs + c.queued_jobs + c.suspended_jobs, c.num_jobs);
    // Invariant 4: predictions are bounded above by the grid top.
    if (c.num_jobs > 0) {
      EXPECT_LE(c.avg_job_rp, 1.0 + 1e-9);
      EXPECT_GE(c.min_job_rp, kUtilityFloor - 1e-9);
    }
  }

  // Invariant 5: outcome utilities match the Eq. 2 arithmetic.
  for (const Job* job : run.queue.Completed()) {
    const double u = (job->goal().completion_goal - *job->completion_time()) /
                     job->goal().relative_goal();
    EXPECT_NEAR(job->achieved_utility(), u, 1e-9);
  }
}

TEST_P(ControllerPropertyTest, RunsAreDeterministic) {
  const auto [seed, intensity_pct] = GetParam();
  const double intensity = intensity_pct / 100.0;
  RandomRun a(static_cast<std::uint64_t>(seed), intensity);
  RandomRun b(static_cast<std::uint64_t>(seed), intensity);
  a.Run(2'000.0);
  b.Run(2'000.0);
  ASSERT_EQ(a.queue.num_completed(), b.queue.num_completed());
  const auto ja = a.queue.Completed();
  const auto jb = b.queue.Completed();
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_DOUBLE_EQ(*ja[i]->completion_time(), *jb[i]->completion_time());
  }
  ASSERT_EQ(a.controller->cycles().size(), b.controller->cycles().size());
  EXPECT_EQ(a.controller->total_placement_changes(),
            b.controller->total_placement_changes());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLoads, ControllerPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13),
                       ::testing::Values(60, 100, 180)));

}  // namespace
}  // namespace mwp

// Robustness: hostile and degenerate inputs must not crash the controller
// or starve well-behaved workloads.
#include <gtest/gtest.h>

#include <cmath>

#include "batch/job_queue.h"
#include "core/apc_controller.h"
#include "web/workload_generator.h"

namespace mwp {
namespace {

ClusterSpec SmallCluster(int nodes = 2) {
  return ClusterSpec::Uniform(nodes, NodeSpec{1, 1'000.0, 2'000.0});
}

std::unique_ptr<Job> MakeJob(AppId id, Seconds submit, Megacycles work,
                             MHz speed, double factor, Megabytes mem) {
  JobProfile p = JobProfile::SingleStage(work, speed, mem);
  return std::make_unique<Job>(id, "job-" + std::to_string(id), p,
                               JobGoal::FromFactor(submit, factor,
                                                   p.min_execution_time()));
}

ApcController::Config FastConfig() {
  ApcController::Config cfg;
  cfg.control_cycle = 1.0;
  cfg.costs = VmCostModel::Free();
  return cfg;
}

TEST(RobustnessTest, JobTooBigForAnyNodeIsQueuedForever) {
  const ClusterSpec cluster = SmallCluster();
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  queue.Submit(MakeJob(1, 0.0, 1'000.0, 1'000.0, 3.0, /*mem=*/9'999.0));
  queue.Submit(MakeJob(2, 0.0, 1'000.0, 1'000.0, 3.0, /*mem=*/500.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(10.0);
  controller.AdvanceJobsTo(sim.now());
  // The oversized job never crashes the controller and never places; the
  // normal job completes unimpeded.
  EXPECT_EQ(queue.Find(1)->status(), JobStatus::kNotStarted);
  EXPECT_TRUE(queue.Find(2)->completed());
}

TEST(RobustnessTest, GoalAlreadyHopelessStillRuns) {
  const ClusterSpec cluster = SmallCluster(1);
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  // Minimum execution time 10 s, goal factor 1.01: hopeless after any delay.
  queue.Submit(MakeJob(1, 0.0, 10'000.0, 1'000.0, 1.01, 500.0));
  controller.Attach(sim, 0.0);
  sim.RunUntil(0.5);
  // Submit a competitor so the hopeless job is genuinely contended.
  queue.Submit(MakeJob(2, 0.5, 10'000.0, 1'000.0, 5.0, 500.0));
  controller.OnJobSubmitted(sim);
  sim.RunUntil(60.0);
  controller.AdvanceJobsTo(sim.now());
  EXPECT_EQ(queue.num_completed(), 2u);
  // The hopeless job still finished (max-min gives it what it can use).
  EXPECT_TRUE(queue.Find(1)->completed());
}

TEST(RobustnessTest, ExtremeArrivalRateClampsToFloorNotCrash) {
  const ClusterSpec cluster = SmallCluster();
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "ddos";
  spec.memory_per_instance = 100.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.05;
  spec.saturation_allocation = 1'500.0;
  // 1e9 req/s: stability boundary light-years past cluster capacity.
  controller.AddTransactionalApp(spec, std::make_shared<ConstantRate>(1e9));
  controller.Attach(sim, 0.0);
  sim.RunUntil(3.0);
  const CycleStats& c = controller.cycles().back();
  ASSERT_EQ(c.tx_utilities.size(), 1u);
  EXPECT_GE(c.tx_utilities[0], kUtilityFloor);
  EXPECT_TRUE(std::isfinite(c.tx_response_times[0]));
}

TEST(RobustnessTest, BurstOfManyTinyJobsDrains) {
  const ClusterSpec cluster = SmallCluster(2);
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  for (int i = 0; i < 60; ++i) {
    queue.Submit(MakeJob(i + 1, 0.0, 100.0, 500.0, 10.0, 600.0));
  }
  controller.Attach(sim, 0.0);
  sim.RunUntil(60.0);
  controller.AdvanceJobsTo(sim.now());
  EXPECT_EQ(queue.num_completed(), 60u);
}

TEST(RobustnessTest, ZeroJobCyclesAreCheapAndStable) {
  const ClusterSpec cluster = SmallCluster();
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  controller.Attach(sim, 0.0);
  sim.RunUntil(100.0);
  EXPECT_EQ(controller.cycles().size(), 101u);
  for (const CycleStats& c : controller.cycles()) {
    EXPECT_TRUE(std::isnan(c.avg_job_rp));
    EXPECT_EQ(c.evaluations, 1);
  }
}

TEST(RobustnessTest, AlternatingLoadSurges) {
  const ClusterSpec cluster = SmallCluster(2);
  JobQueue queue;
  Simulation sim;
  ApcController controller(&cluster, &queue, FastConfig());
  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "spiky";
  spec.memory_per_instance = 100.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.05;
  spec.saturation_allocation = 1'200.0;
  // Rate flips between idle and heavy every ~7 s.
  controller.AddTransactionalApp(
      spec, std::make_shared<SinusoidalRate>(500.0, 500.0, 14.0));
  for (int i = 0; i < 8; ++i) {
    queue.Submit(MakeJob(i + 1, 0.0, 5'000.0, 800.0, 8.0, 700.0));
  }
  controller.Attach(sim, 0.0);
  sim.RunUntil(200.0);
  controller.AdvanceJobsTo(sim.now());
  EXPECT_EQ(queue.num_completed(), 8u);
  for (const CycleStats& c : controller.cycles()) {
    EXPECT_LE(c.cluster_utilization, 1.0 + 1e-6);
  }
}

}  // namespace
}  // namespace mwp

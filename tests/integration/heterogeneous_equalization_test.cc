// Integration: Experiment Three's equalization mechanism at unit scale.
//
// A miniature of §5.3: a transactional app with a gradually degrading
// utility curve shares a small cluster with a stream of batch jobs. Under
// pressure the APC must pull the transactional allocation below its
// saturation and keep the two workloads' relative performance close; when
// pressure ends, the transactional app must recover its ceiling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "batch/job_queue.h"
#include "core/apc_controller.h"
#include "sched/static_partition.h"
#include "web/queuing_model.h"
#include "web/workload_generator.h"

namespace mwp {
namespace {

struct MiniExp3 {
  // 4 nodes x 4,000 MHz = 16,000 MHz; jobs are 2,000 MHz / 4,096 MB (three
  // per 16,384 MB node beside the 1,024 MB tx instance).
  ClusterSpec cluster = ClusterSpec::Uniform(4, NodeSpec{2, 2'000.0, 16'384.0});
  JobQueue queue;
  Simulation sim;
  ApcController controller;

  static TransactionalAppSpec TxSpec() {
    // u = 0.6 at 8,000 MHz saturation; stability at 3,600 MHz: utility
    // degrades visibly over the whole contended range.
    const QueuingModel m =
        QueuingModel::Calibrate(10.0, 1.0, 0.6, 8'000.0, 0.45);
    TransactionalAppSpec spec;
    spec.id = 1;
    spec.name = "tx";
    spec.memory_per_instance = 1'024.0;
    spec.response_time_goal = m.params().response_time_goal;
    spec.demand_per_request = m.params().demand_per_request;
    spec.min_response_time = m.params().min_response_time;
    spec.saturation_allocation = m.params().saturation_allocation;
    return spec;
  }

  static ApcController::Config MakeConfig() {
    ApcController::Config cfg;
    cfg.control_cycle = 100.0;
    cfg.costs = VmCostModel::Free();
    return cfg;
  }

  MiniExp3() : controller(&cluster, &queue, MakeConfig()) {
    controller.AddTransactionalApp(TxSpec(),
                                   std::make_shared<ConstantRate>(10.0));
  }

  /// Submit `count` jobs (1,000 s at 2,000 MHz, goal factor 3), spaced
  /// `gap` seconds apart starting at `start`.
  void SubmitJobs(int count, Seconds start, Seconds gap) {
    for (int i = 0; i < count; ++i) {
      sim.ScheduleAt(start + gap * i, [this, i](Simulation& s) {
        JobProfile p =
            JobProfile::SingleStage(2'000'000.0, 2'000.0, 4'096.0);
        queue.Submit(std::make_unique<Job>(
            100 + i, "job", p,
            JobGoal::FromFactor(s.now(), 3.0, p.min_execution_time())));
        controller.OnJobSubmitted(s);
      });
    }
  }
};

TEST(HeterogeneousEqualizationTest, TxSqueezedUnderPressureAndRecovers) {
  MiniExp3 m;
  // 10 jobs of 2,000 MHz each want 20,000 MHz on a 16,000 MHz cluster.
  m.SubmitJobs(10, 0.0, 50.0);
  m.controller.Attach(m.sim, 0.0);
  m.sim.RunUntil(6'000.0);
  m.controller.AdvanceJobsTo(m.sim.now());

  MHz min_tx_alloc = 1e9;
  Utility min_tx_rp = 1e9;
  for (const CycleStats& c : m.controller.cycles()) {
    min_tx_alloc = std::min(min_tx_alloc, c.tx_allocations.at(0));
    min_tx_rp = std::min(min_tx_rp, c.tx_utilities.at(0));
  }
  EXPECT_LT(min_tx_alloc, 7'000.0) << "tx never squeezed below saturation";
  EXPECT_LT(min_tx_rp, 0.55) << "squeeze never visible in RP";

  // After the batch drains, the tx app recovers its ceiling.
  const CycleStats& last = m.controller.cycles().back();
  EXPECT_NEAR(last.tx_allocations.at(0), 8'000.0, 50.0);
  EXPECT_NEAR(last.tx_utilities.at(0), 0.6, 0.01);
  EXPECT_EQ(m.queue.num_completed(), 10u);
}

TEST(HeterogeneousEqualizationTest, WorkloadsEqualizedAtPeak) {
  MiniExp3 m;
  m.SubmitJobs(10, 0.0, 50.0);
  m.controller.Attach(m.sim, 0.0);
  m.sim.RunUntil(6'000.0);
  m.controller.AdvanceJobsTo(m.sim.now());

  // At the cycle where tx is squeezed hardest, the two workloads' RP are
  // comparable — the paper's fairness outcome.
  const CycleStats* worst = nullptr;
  for (const CycleStats& c : m.controller.cycles()) {
    if (c.num_jobs == 0) continue;
    if (worst == nullptr ||
        c.tx_utilities.at(0) < worst->tx_utilities.at(0)) {
      worst = &c;
    }
  }
  ASSERT_NE(worst, nullptr);
  EXPECT_NEAR(worst->tx_utilities.at(0), worst->avg_job_rp, 0.2);
}

TEST(HeterogeneousEqualizationTest, DynamicBeatsStaticOnWorstWorkload) {
  // The §5.3 comparison at unit scale: the dynamic controller's worse-off
  // workload does better than under either static split.
  auto run_static = [](int tx_nodes) {
    MiniExp3 m;  // for the cluster/spec helpers
    JobQueue queue;
    Simulation sim;
    StaticPartition partition(&m.cluster, &queue, MiniExp3::TxSpec(), tx_nodes,
                              VmCostModel::Free());
    for (int i = 0; i < 10; ++i) {
      sim.ScheduleAt(50.0 * i, [&queue, &partition, i](Simulation& s) {
        JobProfile p = JobProfile::SingleStage(2'000'000.0, 2'000.0, 4'096.0);
        queue.Submit(std::make_unique<Job>(
            100 + i, "job", p,
            JobGoal::FromFactor(s.now(), 3.0, p.min_execution_time())));
        partition.OnJobSubmitted(s);
      });
    }
    sim.RunUntil(6'000.0);
    partition.AdvanceJobsTo(sim.now());
    Utility worst_job = 1.0;
    for (const Job* job : queue.Completed()) {
      worst_job = std::min(worst_job, job->achieved_utility());
    }
    return std::min(worst_job, partition.TxUtility(10.0));
  };

  MiniExp3 dynamic;
  dynamic.SubmitJobs(10, 0.0, 50.0);
  dynamic.controller.Attach(dynamic.sim, 0.0);
  dynamic.sim.RunUntil(6'000.0);
  dynamic.controller.AdvanceJobsTo(dynamic.sim.now());
  Utility dynamic_worst = 1.0;
  for (const Job* job : dynamic.queue.Completed()) {
    dynamic_worst = std::min(dynamic_worst, job->achieved_utility());
  }
  for (const CycleStats& c : dynamic.controller.cycles()) {
    dynamic_worst = std::min(dynamic_worst, c.tx_utilities.at(0));
  }

  // Static with 2 tx nodes (8,000 MHz = saturation) starves jobs; with 1
  // (4,000 MHz, near stability) it cripples the tx app.
  EXPECT_GT(dynamic_worst, run_static(2));
  EXPECT_GT(dynamic_worst, run_static(1));
}

}  // namespace
}  // namespace mwp

// Integration: the §1 motivating scenario — a transactional application and
// four batch jobs on four machines, with a mid-run intensity surge.
#include <gtest/gtest.h>

#include "batch/job_queue.h"
#include "core/apc_controller.h"
#include "web/workload_generator.h"

namespace mwp {
namespace {

// 4 identical machines; job needs one machine for time t; TA needs 2
// machines' worth at first, then all 4 — §1's worked example, scaled to
// 1,000 MHz machines and t = 100 s.
struct IntroScenario {
  ClusterSpec cluster =
      ClusterSpec::Uniform(4, NodeSpec{1, 1'000.0, 4'000.0});
  JobQueue queue;
  Simulation sim;
  ApcController controller;

  IntroScenario()
      : controller(&cluster, &queue, MakeConfig()) {
    // Four jobs, each 100 s at 1,000 MHz, completion goal 3t = 300 s.
    for (AppId id = 1; id <= 4; ++id) {
      JobProfile p = JobProfile::SingleStage(100'000.0, 1'000.0, 1'000.0);
      queue.Submit(std::make_unique<Job>(
          id, "J" + std::to_string(id), p, JobGoal::FromFactor(0.0, 3.0, 100.0)));
    }
  }

  static ApcController::Config MakeConfig() {
    ApcController::Config cfg;
    cfg.control_cycle = 10.0;
    cfg.costs = VmCostModel::Free();
    return cfg;
  }
};

TEST(MixedWorkloadIntegrationTest, JobsAloneAllMeetGoals) {
  IntroScenario s;
  s.controller.Attach(s.sim, 0.0);
  s.sim.RunUntil(1'000.0);
  s.controller.AdvanceJobsTo(s.sim.now());
  ASSERT_EQ(s.queue.num_completed(), 4u);
  for (AppId id = 1; id <= 4; ++id) {
    EXPECT_LE(*s.queue.Find(id)->completion_time(), 300.0)
        << "J" << id << " violated its goal";
  }
}

TEST(MixedWorkloadIntegrationTest, ConstantTxLeavesRoomForJobs) {
  IntroScenario s;
  TransactionalAppSpec spec;
  spec.id = 100;
  spec.name = "TA";
  spec.memory_per_instance = 500.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.2;
  spec.saturation_allocation = 2'000.0;  // needs two machines' worth
  s.controller.AddTransactionalApp(spec,
                                   std::make_shared<ConstantRate>(1'500.0));
  s.controller.Attach(s.sim, 0.0);
  s.sim.RunUntil(2'000.0);
  s.controller.AdvanceJobsTo(s.sim.now());

  ASSERT_EQ(s.queue.num_completed(), 4u);
  // With 2 of 4 machines effectively taken by TA, jobs serialize in pairs:
  // completions around t and 2t, all within the 3t goal.
  for (AppId id = 1; id <= 4; ++id) {
    EXPECT_LE(*s.queue.Find(id)->completion_time(), 300.0);
  }
  // TA held near its saturation allocation throughout.
  const CycleStats& mid = s.controller.cycles()[5];
  EXPECT_GT(mid.tx_allocations[0], 1'500.0);
}

TEST(MixedWorkloadIntegrationTest, IntensitySurgeShiftsAllocation) {
  IntroScenario s;
  TransactionalAppSpec spec;
  spec.id = 100;
  spec.name = "TA";
  spec.memory_per_instance = 500.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.2;
  spec.saturation_allocation = 4'000.0;
  // Load doubles at t = 50 (the §1 example's t/2 surge).
  auto profile = std::make_shared<StepRate>(
      std::vector<StepRate::Step>{{0.0, 1'500.0}, {50.0, 3'200.0}});
  s.controller.AddTransactionalApp(spec, profile);
  s.controller.Attach(s.sim, 0.0);
  s.sim.RunUntil(2'000.0);
  s.controller.AdvanceJobsTo(s.sim.now());

  // Allocation to TA after the surge must exceed its pre-surge share.
  MHz before = 0.0, after = 0.0;
  for (const CycleStats& c : s.controller.cycles()) {
    if (c.time < 50.0) before = std::max(before, c.tx_allocations[0]);
    if (c.time >= 60.0 && c.time <= 200.0) {
      after = std::max(after, c.tx_allocations[0]);
    }
  }
  EXPECT_GT(after, before + 500.0);
  // All jobs still complete.
  EXPECT_EQ(s.queue.num_completed(), 4u);
}

TEST(MixedWorkloadIntegrationTest, GoalViolationsAreSpreadNotConcentrated) {
  // Overload the §1 system so that goals cannot all be met: the max-min
  // objective spreads the damage instead of starving one job.
  IntroScenario s;
  TransactionalAppSpec spec;
  spec.id = 100;
  spec.name = "TA";
  spec.memory_per_instance = 500.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 1.0;
  spec.min_response_time = 0.2;
  spec.saturation_allocation = 3'500.0;
  s.controller.AddTransactionalApp(spec,
                                   std::make_shared<ConstantRate>(3'000.0));
  s.controller.Attach(s.sim, 0.0);
  s.sim.RunUntil(3'000.0);
  s.controller.AdvanceJobsTo(s.sim.now());

  ASSERT_EQ(s.queue.num_completed(), 4u);
  Utility worst = 1.0;
  for (AppId id = 1; id <= 4; ++id) {
    worst = std::min(worst, s.queue.Find(id)->achieved_utility());
  }
  // No job is catastrophically starved.
  EXPECT_GT(worst, -1.0);
}

}  // namespace
}  // namespace mwp

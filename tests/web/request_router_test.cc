#include "web/request_router.h"

#include <gtest/gtest.h>

#include <numeric>

namespace mwp {
namespace {

TransactionalApp MakeApp() {
  TransactionalAppSpec spec;
  spec.id = 1;
  spec.name = "web";
  spec.memory_per_instance = 512.0;
  spec.response_time_goal = 1.0;
  spec.demand_per_request = 10.0;
  spec.min_response_time = 0.05;
  spec.saturation_allocation = 10'000.0;
  return TransactionalApp(spec);
}

TEST(RequestRouterTest, WeightsProportionalToAllocation) {
  const TransactionalApp app = MakeApp();
  RequestRouter router;
  const auto d = router.Route(app, 50.0, {1'000.0, 3'000.0});
  ASSERT_EQ(d.weights.size(), 2u);
  EXPECT_NEAR(d.weights[0], 0.25, 1e-9);
  EXPECT_NEAR(d.weights[1], 0.75, 1e-9);
  EXPECT_NEAR(d.weights[0] + d.weights[1], 1.0, 1e-9);
}

TEST(RequestRouterTest, AdmitsAllUnderCapacity) {
  const TransactionalApp app = MakeApp();
  RequestRouter router(0.95);
  // Capacity: 4,000 MHz / 10 Mc * 0.95 = 380 req/s.
  const auto d = router.Route(app, 100.0, {2'000.0, 2'000.0});
  EXPECT_DOUBLE_EQ(d.admitted_rate, 100.0);
  EXPECT_DOUBLE_EQ(d.rejected_rate, 0.0);
}

TEST(RequestRouterTest, OverloadProtectionCapsAdmission) {
  const TransactionalApp app = MakeApp();
  RequestRouter router(0.95);
  const auto d = router.Route(app, 1'000.0, {2'000.0, 2'000.0});
  EXPECT_NEAR(d.admitted_rate, 380.0, 1e-9);
  EXPECT_NEAR(d.rejected_rate, 620.0, 1e-9);
}

TEST(RequestRouterTest, ZeroAllocationRejectsEverything) {
  const TransactionalApp app = MakeApp();
  RequestRouter router;
  const auto d = router.Route(app, 100.0, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(d.admitted_rate, 0.0);
  EXPECT_DOUBLE_EQ(d.rejected_rate, 100.0);
}

TEST(RequestRouterTest, ZeroArrivalIsQuiet) {
  const TransactionalApp app = MakeApp();
  RequestRouter router;
  const auto d = router.Route(app, 0.0, {1'000.0});
  EXPECT_DOUBLE_EQ(d.admitted_rate, 0.0);
  EXPECT_DOUBLE_EQ(d.rejected_rate, 0.0);
  EXPECT_DOUBLE_EQ(d.response_time, 0.0);
}

TEST(RequestRouterTest, ResponseTimeFromAggregateModel) {
  const TransactionalApp app = MakeApp();
  RequestRouter router;
  const auto d = router.Route(app, 100.0, {1'500.0, 1'500.0});
  EXPECT_NEAR(d.response_time, app.ResponseTime(100.0, 3'000.0), 1e-9);
}

TEST(RequestRouterTest, InstancesWithZeroAllocationGetNoLoad) {
  const TransactionalApp app = MakeApp();
  RequestRouter router;
  const auto d = router.Route(app, 10.0, {2'000.0, 0.0});
  EXPECT_DOUBLE_EQ(d.weights[1], 0.0);
  EXPECT_DOUBLE_EQ(d.weights[0], 1.0);
}

TEST(RequestRouterTest, InvalidHeadroomThrows) {
  EXPECT_THROW(RequestRouter(0.0), std::logic_error);
  EXPECT_THROW(RequestRouter(1.0), std::logic_error);
}

}  // namespace
}  // namespace mwp

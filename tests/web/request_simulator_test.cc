// Validation of the §3.3 analytic model against request-level simulation.
#include "web/request_simulator.h"

#include <gtest/gtest.h>

#include "web/queuing_model.h"

namespace mwp {
namespace {

RequestSimConfig BaseConfig() {
  RequestSimConfig cfg;
  cfg.arrival_rate = 50.0;        // req/s
  cfg.mean_demand = 10.0;         // Mc -> stability boundary at 500 MHz
  cfg.capacity = 1'000.0;         // ρ = 0.5
  cfg.fixed_latency = 0.05;
  cfg.total_requests = 40'000;
  cfg.warmup_requests = 2'000;
  cfg.seed = 17;
  return cfg;
}

TEST(RequestSimulatorTest, MeanResponseMatchesAnalyticModel) {
  const RequestSimConfig cfg = BaseConfig();
  const auto results = SimulateRequests(cfg);
  // Analytic M/G/1-PS: t = t_min + c/(ω − λc) = 0.05 + 10/500 = 0.07.
  const double analytic = 0.05 + 10.0 / (1'000.0 - 500.0);
  EXPECT_NEAR(results.mean_response_time, analytic, analytic * 0.05);
}

TEST(RequestSimulatorTest, MatchesQueuingModelObject) {
  const RequestSimConfig cfg = BaseConfig();
  const auto results = SimulateRequests(cfg);
  QueuingModelParams p;
  p.arrival_rate = cfg.arrival_rate;
  p.demand_per_request = cfg.mean_demand;
  p.response_time_goal = 1.0;
  p.min_response_time = cfg.fixed_latency;
  p.saturation_allocation = 5'000.0;
  const QueuingModel model(p);
  EXPECT_NEAR(results.mean_response_time, model.ResponseTime(cfg.capacity),
              0.01);
}

TEST(RequestSimulatorTest, UtilizationMatchesOfferedLoad) {
  const RequestSimConfig cfg = BaseConfig();
  const auto results = SimulateRequests(cfg);
  // ρ = λc/ω = 0.5.
  EXPECT_NEAR(results.utilization, 0.5, 0.02);
}

TEST(RequestSimulatorTest, LittlesLawHolds) {
  const RequestSimConfig cfg = BaseConfig();
  const auto results = SimulateRequests(cfg);
  // L = λ·W (W excluding the fixed latency, which is outside the station).
  const double w = results.mean_response_time - cfg.fixed_latency;
  EXPECT_NEAR(results.mean_in_system, cfg.arrival_rate * w,
              results.mean_in_system * 0.06);
}

TEST(RequestSimulatorTest, ProcessorSharingInsensitivity) {
  // The PS queue's mean response time depends on the demand distribution
  // only through its mean — the property that makes the single analytic
  // formula valid for real (non-exponential) request mixes.
  RequestSimConfig cfg = BaseConfig();
  cfg.demand_distribution = DemandDistribution::kExponential;
  const double exp_mean = SimulateRequests(cfg).mean_response_time;
  cfg.demand_distribution = DemandDistribution::kDeterministic;
  const double det_mean = SimulateRequests(cfg).mean_response_time;
  cfg.demand_distribution = DemandDistribution::kHyperexp2;
  const double hyper_mean = SimulateRequests(cfg).mean_response_time;
  EXPECT_NEAR(det_mean, exp_mean, exp_mean * 0.06);
  EXPECT_NEAR(hyper_mean, exp_mean, exp_mean * 0.10);
}

TEST(RequestSimulatorTest, MoreCapacityLowersResponse) {
  RequestSimConfig cfg = BaseConfig();
  cfg.total_requests = 10'000;
  cfg.capacity = 700.0;
  const double slow = SimulateRequests(cfg).mean_response_time;
  cfg.capacity = 2'000.0;
  const double fast = SimulateRequests(cfg).mean_response_time;
  EXPECT_LT(fast, slow);
}

TEST(RequestSimulatorTest, OverloadDiverges) {
  RequestSimConfig cfg = BaseConfig();
  cfg.capacity = 400.0;  // below the 500 MHz stability boundary
  cfg.total_requests = 5'000;
  cfg.warmup_requests = 100;
  const auto results = SimulateRequests(cfg);
  // Unstable: response times blow far past the stable-configuration value.
  EXPECT_GT(results.mean_response_time, 1.0);
  EXPECT_GT(results.utilization, 0.98);
}

TEST(RequestSimulatorTest, DeterministicGivenSeed) {
  const RequestSimConfig cfg = BaseConfig();
  const auto a = SimulateRequests(cfg);
  const auto b = SimulateRequests(cfg);
  EXPECT_DOUBLE_EQ(a.mean_response_time, b.mean_response_time);
  EXPECT_EQ(a.completed, b.completed);
}

TEST(RequestSimulatorTest, PercentilesOrdered) {
  const auto results = SimulateRequests(BaseConfig());
  EXPECT_LE(results.p50_response_time, results.p95_response_time);
  EXPECT_LE(results.p95_response_time, results.max_response_time);
  EXPECT_GE(results.p50_response_time, 0.05);  // never below fixed latency
}

TEST(RequestSimulatorTest, InvalidConfigsThrow) {
  RequestSimConfig cfg = BaseConfig();
  cfg.arrival_rate = 0.0;
  EXPECT_THROW(SimulateRequests(cfg), std::logic_error);
  cfg = BaseConfig();
  cfg.warmup_requests = cfg.total_requests;
  EXPECT_THROW(SimulateRequests(cfg), std::logic_error);
}

class ResponseSweep : public ::testing::TestWithParam<double> {};

TEST_P(ResponseSweep, AnalyticModelTracksSimulationAcrossLoads) {
  // Property: across utilizations 0.2 … 0.85 the analytic curve stays
  // within a few percent of the request-level measurement — the §3.3 model
  // is trustworthy exactly where the placement controller operates.
  const double rho = GetParam();
  RequestSimConfig cfg = BaseConfig();
  cfg.capacity = 500.0 / rho;
  cfg.total_requests = 60'000;
  cfg.warmup_requests = 5'000;
  const auto results = SimulateRequests(cfg);
  const double analytic =
      cfg.fixed_latency + cfg.mean_demand / (cfg.capacity - 500.0);
  EXPECT_NEAR(results.mean_response_time, analytic, analytic * 0.08)
      << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, ResponseSweep,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.8, 0.85));

}  // namespace
}  // namespace mwp

#include "web/queuing_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace mwp {
namespace {

QueuingModel Simple() {
  QueuingModelParams p;
  p.arrival_rate = 100.0;          // req/s
  p.demand_per_request = 10.0;     // Mcycles -> stability at 1,000 MHz
  p.response_time_goal = 1.0;      // s
  p.min_response_time = 0.05;
  p.saturation_allocation = 5'000.0;
  return QueuingModel(p);
}

TEST(QueuingModelTest, StabilityBoundary) {
  EXPECT_DOUBLE_EQ(Simple().stability_boundary(), 1'000.0);
}

TEST(QueuingModelTest, ResponseTimeFollowsMM1AboveBoundary) {
  const QueuingModel m = Simple();
  // t = t_min + c/(w - λc) = 0.05 + 10/(2,000-1,000) = 0.06.
  EXPECT_NEAR(m.ResponseTime(2'000.0), 0.06, 1e-9);
  EXPECT_NEAR(m.ResponseTime(1'500.0), 0.05 + 10.0 / 500.0, 1e-9);
}

TEST(QueuingModelTest, ResponseTimeMonotoneDecreasing) {
  const QueuingModel m = Simple();
  Seconds prev = m.ResponseTime(0.0);
  for (MHz w = 100.0; w <= 6'000.0; w += 100.0) {
    const Seconds t = m.ResponseTime(w);
    EXPECT_LE(t, prev + 1e-12) << "at " << w;
    prev = t;
  }
}

TEST(QueuingModelTest, ResponseTimeFiniteBelowBoundary) {
  const QueuingModel m = Simple();
  const Seconds t = m.ResponseTime(500.0);
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GT(t, m.ResponseTime(1'100.0));
}

TEST(QueuingModelTest, UtilityMonotoneIncreasing) {
  const QueuingModel m = Simple();
  Utility prev = m.UtilityAt(0.0);
  for (MHz w = 50.0; w <= 6'000.0; w += 50.0) {
    const Utility u = m.UtilityAt(w);
    EXPECT_GE(u, prev - 1e-12);
    prev = u;
  }
}

TEST(QueuingModelTest, UtilityZeroWhenResponseEqualsGoal) {
  const QueuingModel m = Simple();
  // Find ω with t = τ: 1.0 = 0.05 + 10/(w-1000) -> w = 1000 + 10/0.95.
  const MHz w = 1'000.0 + 10.0 / 0.95;
  EXPECT_NEAR(m.UtilityAt(w), 0.0, 1e-9);
}

TEST(QueuingModelTest, UtilityCapsAtSaturation) {
  const QueuingModel m = Simple();
  EXPECT_DOUBLE_EQ(m.UtilityAt(5'000.0), m.UtilityAt(50'000.0));
  EXPECT_DOUBLE_EQ(m.max_utility(), m.UtilityAt(m.saturation_allocation()));
}

TEST(QueuingModelTest, UtilityClampedAtFloor) {
  const QueuingModel m = Simple();
  EXPECT_GE(m.UtilityAt(0.0), kUtilityFloor);
}

TEST(QueuingModelTest, AllocationForInvertsUtility) {
  const QueuingModel m = Simple();
  for (Utility u : {-2.0, -1.0, -0.5, 0.0, 0.3, 0.6, 0.8}) {
    if (u >= m.max_utility()) continue;
    const MHz w = m.AllocationFor(u);
    EXPECT_NEAR(m.UtilityAt(w), u, 1e-6) << "u=" << u;
  }
}

TEST(QueuingModelTest, AllocationForUnreachableTargetReturnsSaturation) {
  const QueuingModel m = Simple();
  EXPECT_DOUBLE_EQ(m.AllocationFor(0.999), m.saturation_allocation());
  EXPECT_DOUBLE_EQ(m.AllocationFor(m.max_utility() + 0.1),
                   m.saturation_allocation());
}

TEST(QueuingModelTest, CalibrateHitsOperatingPoint) {
  // The paper's Experiment Three point: u = 0.66 at 130,000 MHz.
  const QueuingModel m =
      QueuingModel::Calibrate(1'000.0, 1.0, 0.66, 130'000.0, 0.715);
  EXPECT_NEAR(m.UtilityAt(130'000.0), 0.66, 1e-9);
  EXPECT_DOUBLE_EQ(m.saturation_allocation(), 130'000.0);
  EXPECT_NEAR(m.stability_boundary(), 0.715 * 130'000.0, 1e-6);
  // More CPU does not help ("will not further increase its satisfaction").
  EXPECT_DOUBLE_EQ(m.UtilityAt(200'000.0), m.UtilityAt(130'000.0));
}

TEST(QueuingModelTest, CalibratedSixNodePartitionDegrades) {
  // 6 nodes of the paper's machines: 93,600 MHz — between the stability
  // boundary (92,950) and saturation, so utility is visibly below 0.66.
  const QueuingModel m =
      QueuingModel::Calibrate(1'000.0, 1.0, 0.66, 130'000.0, 0.715);
  const Utility u6 = m.UtilityAt(6 * 15'600.0);
  EXPECT_LT(u6, 0.55);
  EXPECT_GT(u6, 0.0);
  // 9 nodes (140,400 MHz) fully satisfies.
  EXPECT_NEAR(m.UtilityAt(9 * 15'600.0), 0.66, 1e-9);
}

TEST(QueuingModelTest, WithArrivalRateShiftsBoundary) {
  const QueuingModel m = Simple();
  const QueuingModel doubled = m.WithArrivalRate(200.0);
  EXPECT_DOUBLE_EQ(doubled.stability_boundary(), 2'000.0);
  // Same allocation now yields worse utility.
  EXPECT_LT(doubled.UtilityAt(2'500.0), m.UtilityAt(2'500.0));
}

TEST(QueuingModelTest, WithArrivalRateRepairsSwallowedSaturation) {
  const QueuingModel m = Simple();
  // A huge rate pushes the boundary past the old saturation point; the
  // derived model must stay self-consistent.
  const QueuingModel heavy = m.WithArrivalRate(10'000.0);
  EXPECT_GT(heavy.saturation_allocation(), heavy.stability_boundary());
}

TEST(QueuingModelTest, InvalidParamsThrow) {
  QueuingModelParams p;
  p.arrival_rate = 0.0;
  p.demand_per_request = 1.0;
  p.response_time_goal = 1.0;
  EXPECT_THROW(QueuingModel{p}, std::logic_error);
  p.arrival_rate = 10.0;
  p.min_response_time = 2.0;  // above the goal
  EXPECT_THROW(QueuingModel{p}, std::logic_error);
}

TEST(QueuingModelTest, InfeasibleCalibrationThrows) {
  // Stability fraction so close to 1 that the queuing delay at saturation
  // exceeds the whole response budget.
  EXPECT_THROW(
      QueuingModel::Calibrate(1.0, 1.0, 0.99, 1'000.0, 0.999999),
      std::logic_error);
}

TEST(QueuingModelTest, UtilityFloorIsZeroAllocationUtility) {
  const QueuingModel m = Simple();
  EXPECT_DOUBLE_EQ(m.utility_floor(), m.UtilityAt(0.0));
  EXPECT_GE(m.utility_floor(), kUtilityFloor);
}

TEST(QueuingModelTest, AllocationForSaturatesUtilityNotAllocation) {
  // The inversion contract: a target below what zero allocation already
  // reports costs nothing (0 MHz), and a target at or above the ceiling
  // costs exactly the saturation allocation. The old behavior clamped the
  // *target* at kUtilityFloor and then inverted, demanding a nonzero
  // allocation for utilities the model can never report.
  const QueuingModel m = Simple();
  EXPECT_DOUBLE_EQ(m.AllocationFor(m.utility_floor()), 0.0);
  EXPECT_DOUBLE_EQ(m.AllocationFor(m.utility_floor() - 5.0), 0.0);
  EXPECT_DOUBLE_EQ(m.AllocationFor(kUtilityFloor), 0.0);
  EXPECT_DOUBLE_EQ(m.AllocationFor(-1e9), 0.0);
  EXPECT_DOUBLE_EQ(m.AllocationFor(m.max_utility()),
                   m.saturation_allocation());
}

TEST(QueuingModelTest, RoundTripPropertyAcrossReportableRange) {
  // UtilityAt(AllocationFor(u)) ≈ u on the whole reportable range
  // [utility_floor(), max_utility()], endpoints included.
  for (const QueuingModel& m :
       {Simple(),
        QueuingModel::Calibrate(1'000.0, 1.0, 0.66, 130'000.0, 0.715)}) {
    const Utility lo = m.utility_floor();
    const Utility hi = m.max_utility();
    ASSERT_LT(lo, hi);
    for (int i = 0; i <= 200; ++i) {
      const Utility u = lo + (hi - lo) * (static_cast<double>(i) / 200.0);
      const MHz w = m.AllocationFor(u);
      EXPECT_GE(w, 0.0) << "u=" << u;
      EXPECT_LE(w, m.saturation_allocation()) << "u=" << u;
      EXPECT_NEAR(m.UtilityAt(w), u, 1e-6) << "u=" << u;
    }
  }
}

class QueuingRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QueuingRoundTrip, AllocationUtilityConsistency) {
  const QueuingModel m =
      QueuingModel::Calibrate(1'000.0, 1.0, 0.66, 130'000.0, 0.715);
  const MHz w = GetParam();
  const Utility u = m.UtilityAt(w);
  const MHz w2 = m.AllocationFor(u);
  // Inverse returns the cheapest allocation achieving u.
  EXPECT_LE(w2, std::max(w, m.saturation_allocation()) + 1e-6);
  EXPECT_NEAR(m.UtilityAt(w2), u, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllocationSweep, QueuingRoundTrip,
                         ::testing::Values(95'000.0, 100'000.0, 110'000.0,
                                           120'000.0, 129'000.0, 130'000.0,
                                           150'000.0));

}  // namespace
}  // namespace mwp

#include "web/workload_generator.h"

#include <gtest/gtest.h>

namespace mwp {
namespace {

TEST(ConstantRateTest, AlwaysSame) {
  ConstantRate r(1'000.0);
  EXPECT_DOUBLE_EQ(r.RateAt(0.0), 1'000.0);
  EXPECT_DOUBLE_EQ(r.RateAt(65'000.0), 1'000.0);
}

TEST(StepRateTest, RightContinuousSteps) {
  StepRate r({{0.0, 100.0}, {50.0, 400.0}, {100.0, 200.0}});
  EXPECT_DOUBLE_EQ(r.RateAt(0.0), 100.0);
  EXPECT_DOUBLE_EQ(r.RateAt(49.9), 100.0);
  EXPECT_DOUBLE_EQ(r.RateAt(50.0), 400.0);
  EXPECT_DOUBLE_EQ(r.RateAt(99.0), 400.0);
  EXPECT_DOUBLE_EQ(r.RateAt(100.0), 200.0);
  EXPECT_DOUBLE_EQ(r.RateAt(1e6), 200.0);
}

TEST(StepRateTest, BeforeFirstStepUsesFirstRate) {
  StepRate r({{10.0, 5.0}});
  EXPECT_DOUBLE_EQ(r.RateAt(0.0), 5.0);
}

TEST(StepRateTest, InvalidStepsThrow) {
  EXPECT_THROW(StepRate({{10.0, 1.0}, {10.0, 2.0}}), std::logic_error);
  EXPECT_THROW(StepRate({{0.0, -1.0}}), std::logic_error);
}

TEST(SinusoidalRateTest, OscillatesAroundBase) {
  SinusoidalRate r(100.0, 50.0, 100.0);
  EXPECT_NEAR(r.RateAt(0.0), 100.0, 1e-9);
  EXPECT_NEAR(r.RateAt(25.0), 150.0, 1e-9);  // peak at quarter period
  EXPECT_NEAR(r.RateAt(75.0), 50.0, 1e-9);   // trough
}

TEST(SinusoidalRateTest, ClampedAtZero) {
  SinusoidalRate r(10.0, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(r.RateAt(75.0), 0.0);
}

TEST(NoisyRateTest, StaysWithinJitterBand) {
  auto inner = std::make_shared<ConstantRate>(100.0);
  NoisyRate r(inner, 0.2, 60.0, 7);
  for (Seconds t = 0.0; t < 6'000.0; t += 60.0) {
    const double v = r.RateAt(t);
    EXPECT_GE(v, 80.0 - 1e-9);
    EXPECT_LE(v, 120.0 + 1e-9);
  }
}

TEST(NoisyRateTest, DeterministicPerInterval) {
  auto inner = std::make_shared<ConstantRate>(100.0);
  NoisyRate r(inner, 0.2, 60.0, 7);
  EXPECT_DOUBLE_EQ(r.RateAt(10.0), r.RateAt(59.0));  // same bucket
  NoisyRate r2(inner, 0.2, 60.0, 7);
  EXPECT_DOUBLE_EQ(r.RateAt(123.0), r2.RateAt(123.0));  // same seed
}

TEST(NoisyRateTest, VariesAcrossIntervals) {
  auto inner = std::make_shared<ConstantRate>(100.0);
  NoisyRate r(inner, 0.2, 60.0, 7);
  bool varied = false;
  const double first = r.RateAt(0.0);
  for (int i = 1; i < 20; ++i) {
    if (r.RateAt(i * 60.0) != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace mwp

#include "web/work_profiler.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mwp {
namespace {

TEST(WorkProfilerTest, FallbackBeforeObservations) {
  WorkProfiler p;
  EXPECT_DOUBLE_EQ(p.EstimateDemandPerRequest(42.0), 42.0);
  EXPECT_EQ(p.observation_count(), 0u);
}

TEST(WorkProfilerTest, ExactRecoveryFromCleanData) {
  WorkProfiler p;
  const double c = 108.0;  // Mcycles per request
  for (double lambda : {100.0, 500.0, 1'000.0}) {
    p.Observe(lambda, c * lambda);
  }
  EXPECT_NEAR(p.EstimateDemandPerRequest(), c, 1e-9);
}

TEST(WorkProfilerTest, NoisyDataConverges) {
  WorkProfiler p;
  Rng rng(13);
  const double c = 90.0;
  for (int i = 0; i < 5'000; ++i) {
    const double lambda = rng.Uniform(100.0, 1'000.0);
    const double noise = rng.Uniform(0.9, 1.1);
    p.Observe(lambda, c * lambda * noise);
  }
  EXPECT_NEAR(p.EstimateDemandPerRequest(), c, c * 0.02);
}

TEST(WorkProfilerTest, ZeroThroughputIsUninformative) {
  WorkProfiler p;
  p.Observe(0.0, 0.0);
  EXPECT_DOUBLE_EQ(p.EstimateDemandPerRequest(7.0), 7.0);
  p.Observe(10.0, 100.0);
  EXPECT_NEAR(p.EstimateDemandPerRequest(), 10.0, 1e-9);
}

TEST(WorkProfilerTest, ForgettingAdaptsToDrift) {
  WorkProfiler adaptive(/*forgetting=*/0.9);
  WorkProfiler frozen(/*forgetting=*/1.0);
  // Old regime: c = 50; new regime: c = 100.
  for (int i = 0; i < 200; ++i) {
    adaptive.Observe(100.0, 50.0 * 100.0);
    frozen.Observe(100.0, 50.0 * 100.0);
  }
  for (int i = 0; i < 50; ++i) {
    adaptive.Observe(100.0, 100.0 * 100.0);
    frozen.Observe(100.0, 100.0 * 100.0);
  }
  EXPECT_NEAR(adaptive.EstimateDemandPerRequest(), 100.0, 1.0);
  EXPECT_LT(frozen.EstimateDemandPerRequest(), 70.0);
}

TEST(WorkProfilerTest, InvalidInputsThrow) {
  WorkProfiler p;
  EXPECT_THROW(p.Observe(-1.0, 10.0), std::logic_error);
  EXPECT_THROW(p.Observe(10.0, -1.0), std::logic_error);
  EXPECT_THROW(WorkProfiler(0.0), std::logic_error);
  EXPECT_THROW(WorkProfiler(1.5), std::logic_error);
}

}  // namespace
}  // namespace mwp

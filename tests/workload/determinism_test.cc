// Determinism tests for the workload generator and scenario runner: same
// seed => byte-identical serialized event stream (and hash), different seeds
// => distinct streams, and a full scenario run reproduces its end-state
// placement fingerprint bit-for-bit. These are the properties the golden
// Alibaba trace and the replay gate stand on.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "workload/scenario.h"

namespace mwp::workload {
namespace {

ScenarioSpec SmallSpec(std::uint64_t seed = 42) {
  ScenarioSpec spec = AlibabaScenarioSpec(/*num_nodes=*/12, seed);
  spec.duration = 2'400.0;
  spec.max_jobs = 200;
  return spec;
}

TEST(WorkloadDeterminismTest, SameSeedSameSerializedStream) {
  const ScenarioWorkload a = GenerateWorkload(SmallSpec());
  const ScenarioWorkload b = GenerateWorkload(SmallSpec());
  EXPECT_EQ(SerializeWorkload(a), SerializeWorkload(b));
  EXPECT_EQ(WorkloadHash(a), WorkloadHash(b));
}

TEST(WorkloadDeterminismTest, DistinctSeedsDistinctStreams) {
  std::set<std::uint64_t> hashes;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    hashes.insert(WorkloadHash(GenerateWorkload(SmallSpec(seed))));
  }
  EXPECT_EQ(hashes.size(), 8u);
}

TEST(WorkloadDeterminismTest, HashCoversEveryStream) {
  // Perturbing any single generator input must change the hash: the hash is
  // the determinism oracle, so a stream it ignored would be unguarded.
  const std::uint64_t base = WorkloadHash(GenerateWorkload(SmallSpec()));

  // Frequent flash events so episodes certainly materialize inside the short
  // horizon (the preset's 3-hour mean gap often yields none in 2400 s, which
  // would leave the stream legitimately unchanged).
  ScenarioSpec tx = SmallSpec();
  tx.tx_diurnal.bursts = {/*mean_gap=*/300.0, /*mean_duration=*/120.0,
                          /*min_duration=*/60.0, /*max_duration=*/300.0};
  EXPECT_NE(WorkloadHash(GenerateWorkload(tx)), base);

  ScenarioSpec batch = SmallSpec();
  batch.batch_arrivals.mean_interarrival *= 1.5;
  EXPECT_NE(WorkloadHash(GenerateWorkload(batch)), base);

  ScenarioSpec shape = SmallSpec();
  shape.jobs.memory.log_stddev = 0.5;
  EXPECT_NE(WorkloadHash(GenerateWorkload(shape)), base);
}

TEST(WorkloadDeterminismTest, WorkloadHashIdenticalAcrossModes) {
  const ScenarioSpec spec = SmallSpec();
  const ScenarioResult apc = RunScenario(spec, ScenarioMode::kApc);
  const ScenarioResult stat = RunScenario(spec, ScenarioMode::kStaticPartition);
  const ScenarioResult edf = RunScenario(spec, ScenarioMode::kEdf);
  EXPECT_EQ(apc.workload_hash, stat.workload_hash);
  EXPECT_EQ(apc.workload_hash, edf.workload_hash);
  EXPECT_EQ(apc.workload_hash, WorkloadHash(GenerateWorkload(spec)));
}

TEST(ScenarioDeterminismTest, ApcRunReproducesPlacementFingerprint) {
  const ScenarioSpec spec = SmallSpec();
  const ScenarioResult a = RunScenario(spec, ScenarioMode::kApc);
  const ScenarioResult b = RunScenario(spec, ScenarioMode::kApc);
  EXPECT_EQ(a.placement_fingerprint, b.placement_fingerprint);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.placement_changes, b.placement_changes);
  EXPECT_EQ(a.tx_sla_violations, b.tx_sla_violations);
  EXPECT_FALSE(a.placement_fingerprint.empty());
}

TEST(ScenarioDeterminismTest, ShardedRunReproducesPlacementFingerprint) {
  ScenarioSpec spec = SmallSpec();
  spec.shard_cell_size = 4;  // 12 nodes -> 3 cells
  const ScenarioResult a = RunScenario(spec, ScenarioMode::kApc);
  const ScenarioResult b = RunScenario(spec, ScenarioMode::kApc);
  EXPECT_EQ(a.placement_fingerprint, b.placement_fingerprint);
  EXPECT_EQ(a.placement_changes, b.placement_changes);
}

TEST(ScenarioDeterminismTest, BaselineModesReproduceFingerprints) {
  const ScenarioSpec spec = SmallSpec();
  for (const ScenarioMode mode :
       {ScenarioMode::kStaticPartition, ScenarioMode::kEdf}) {
    const ScenarioResult a = RunScenario(spec, mode);
    const ScenarioResult b = RunScenario(spec, mode);
    EXPECT_EQ(a.placement_fingerprint, b.placement_fingerprint)
        << ToString(mode);
    EXPECT_EQ(a.jobs_completed, b.jobs_completed) << ToString(mode);
  }
}

TEST(ScenarioDeterminismTest, DifferentSeedsDiverge) {
  const ScenarioResult a = RunScenario(SmallSpec(1), ScenarioMode::kApc);
  const ScenarioResult b = RunScenario(SmallSpec(2), ScenarioMode::kApc);
  EXPECT_NE(a.workload_hash, b.workload_hash);
  EXPECT_NE(a.placement_fingerprint, b.placement_fingerprint);
}

}  // namespace
}  // namespace mwp::workload

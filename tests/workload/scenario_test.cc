// Scenario composition tests: spec validation, materialized workload sanity,
// the three-mode smoke run on the small calibrated spec, and the schema-v2
// trace header round trip carrying the generator's calibration parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/cycle_trace.h"
#include "obs/trace_export.h"
#include "replay/trace_reader.h"
#include "workload/scenario.h"

namespace mwp::workload {
namespace {

ScenarioSpec SmallSpec() {
  ScenarioSpec spec = AlibabaScenarioSpec(/*num_nodes=*/12, /*seed=*/42);
  spec.duration = 2'400.0;
  spec.max_jobs = 200;
  return spec;
}

TEST(ScenarioSpecTest, CalibratedPresetValidates) {
  AlibabaScenarioSpec(100).Validate();
  AlibabaScenarioSpec(12).Validate();
  AlibabaScenarioSpec(500, 7).Validate();
}

TEST(ScenarioSpecTest, InvalidSpecsThrow) {
  ScenarioSpec nodes = SmallSpec();
  nodes.num_nodes = 1;
  EXPECT_THROW(nodes.Validate(), std::logic_error);

  ScenarioSpec partition = SmallSpec();
  partition.static_tx_nodes = partition.num_nodes;
  EXPECT_THROW(partition.Validate(), std::logic_error);

  ScenarioSpec amplitude = SmallSpec();
  amplitude.tx_diurnal.harmonics = {{1, 0.8, 0.0}, {2, 0.5, 0.0}};
  EXPECT_THROW(amplitude.Validate(), std::logic_error);  // sum > 1

  ScenarioSpec saturation = SmallSpec();
  saturation.tx_saturation_cluster_fraction = 0.0;
  EXPECT_THROW(saturation.Validate(), std::logic_error);
}

TEST(ScenarioWorkloadTest, MaterializedJobsRespectTheSpec) {
  const ScenarioSpec spec = SmallSpec();
  const ScenarioWorkload workload = GenerateWorkload(spec);
  ASSERT_FALSE(workload.jobs.empty());
  ASSERT_EQ(workload.tx_bursts.size(),
            static_cast<std::size_t>(spec.num_tx_apps));

  Seconds prev = -1.0;
  for (const ScenarioJob& job : workload.jobs) {
    EXPECT_GT(job.submit_time, prev);  // strictly increasing arrivals
    EXPECT_LT(job.submit_time, spec.duration);
    prev = job.submit_time;
    EXPECT_GE(job.work, spec.jobs.work.lower);
    EXPECT_LE(job.work, spec.jobs.work.upper);
    EXPECT_GE(job.memory, spec.jobs.min_memory);
    EXPECT_LE(job.memory, spec.jobs.max_memory);
    EXPECT_TRUE(std::any_of(
        spec.jobs.speeds.begin(), spec.jobs.speeds.end(),
        [&](const SpeedOption& s) { return s.max_speed == job.max_speed; }));
    EXPECT_GE(job.goal_factor, spec.jobs.goal_factor_min);
    EXPECT_LT(job.goal_factor, spec.jobs.goal_factor_max);
  }
}

TEST(ScenarioWorkloadTest, MaxJobsCapsTheStream) {
  ScenarioSpec spec = SmallSpec();
  spec.max_jobs = 5;
  const ScenarioWorkload workload = GenerateWorkload(spec);
  EXPECT_EQ(workload.jobs.size(), 5u);
}

TEST(ScenarioRunTest, AllThreeModesCompleteWork) {
  const ScenarioSpec spec = SmallSpec();
  const ScenarioWorkload workload = GenerateWorkload(spec);
  for (const ScenarioMode mode :
       {ScenarioMode::kApc, ScenarioMode::kStaticPartition,
        ScenarioMode::kEdf}) {
    const ScenarioResult r = RunScenario(spec, mode);
    EXPECT_EQ(r.jobs_submitted, workload.jobs.size()) << ToString(mode);
    EXPECT_GT(r.jobs_completed, 0u) << ToString(mode);
    EXPECT_GE(r.end_time, spec.duration) << ToString(mode);
    EXPECT_GT(r.cluster_utilization.count(), 0u) << ToString(mode);
    EXPECT_FALSE(r.job_rp.empty()) << ToString(mode);
  }
}

TEST(ScenarioRunTest, TransactionalSideServedExceptUnderEdf) {
  const ScenarioSpec spec = SmallSpec();
  const ScenarioResult apc = RunScenario(spec, ScenarioMode::kApc);
  EXPECT_GT(apc.tx_samples, 0);
  EXPECT_EQ(apc.tx_samples,
            static_cast<int>(apc.tx_response_times.count()));

  const ScenarioResult stat =
      RunScenario(spec, ScenarioMode::kStaticPartition);
  EXPECT_GT(stat.tx_samples, 0);

  // EDF is the batch-only comparator: no transactional workload is served.
  const ScenarioResult edf = RunScenario(spec, ScenarioMode::kEdf);
  EXPECT_EQ(edf.tx_samples, 0);
  EXPECT_EQ(edf.tx_response_times.count(), 0u);
}

TEST(ScenarioTraceTest, CalibrationParamsEmbedAndRoundTrip) {
  ScenarioSpec spec = SmallSpec();
  obs::TraceRecorder recorder;
  spec.trace = &recorder;
  spec.trace_run_id = "alibaba-test";
  RunScenario(spec, ScenarioMode::kApc);
  const auto traces = recorder.Traces();
  ASSERT_FALSE(traces.empty());

  obs::TraceContext context;
  context.experiment = "alibaba_scenario";
  context.seed = spec.seed;
  context.control_cycle = spec.control_cycle;
  context.build_type = "Release";
  context.git_sha = "test";
  context.run_id = "alibaba-test";
  context.scenario = ScenarioCalibrationParams(spec);
  ASSERT_FALSE(context.scenario.empty());

  std::ostringstream first;
  WriteTraceJsonl(first, context, traces);
  const std::string exported = first.str();
  EXPECT_NE(exported.find("\"scenario\":{\"nodes\":12"), std::string::npos);

  // Parse -> re-export must be byte-identical, calibration object included.
  std::string error;
  const auto parsed = replay::ParseTraceJsonl(exported, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->context.scenario, context.scenario);
  std::ostringstream second;
  WriteTraceJsonl(second, parsed->context, parsed->cycles);
  EXPECT_EQ(second.str(), exported);
}

TEST(ScenarioTraceTest, HeaderWithoutScenarioStaysByteIdentical) {
  // Guard for pre-scenario exports: an empty calibration vector must leave
  // the header exactly as it was before the key existed.
  obs::TraceContext context;
  context.experiment = "experiment1";
  context.seed = 1;
  context.control_cycle = 600.0;
  context.build_type = "Release";
  context.git_sha = "abc";
  context.run_id = "r1";
  std::ostringstream os;
  WriteTraceJsonl(os, context, {});
  EXPECT_EQ(os.str(),
            "{\"record\":\"header\",\"schema_version\":2,\"run_id\":\"r1\","
            "\"experiment\":\"experiment1\",\"seed\":1,\"control_cycle\":600,"
            "\"build_type\":\"Release\",\"git_sha\":\"abc\","
            "\"num_cycles\":0}\n");
}

}  // namespace
}  // namespace mwp::workload

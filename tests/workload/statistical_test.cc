// Statistical property tests for the Alibaba-calibrated workload generator
// (docs/ALGORITHMS.md §17): seeded goodness-of-fit checks that the sampled
// streams match the configured distributions. All tests are deterministic
// (fixed seeds), so thresholds are chosen with margin over the analytic
// critical values rather than expected flake rates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/stats.h"
#include "workload/bursts.h"
#include "workload/diurnal.h"
#include "workload/heavy_tail.h"
#include "workload/mmpp.h"

namespace mwp::workload {
namespace {

constexpr int kSamples = 20'000;

HeavyTailJobSpec TestJobSpec() {
  HeavyTailJobSpec spec;
  spec.work = {/*alpha=*/1.7, /*lower=*/2.4e6, /*upper=*/1.2e9};
  spec.memory = {/*log_mean=*/7.496, /*log_stddev=*/0.9};
  spec.cpu_memory_correlation = 0.35;
  spec.min_memory = 256.0;
  spec.max_memory = 12'288.0;
  spec.speeds = {{1'560.0, 0.35}, {2'340.0, 0.40}, {3'900.0, 0.25}};
  spec.goal_factor_min = 1.5;
  spec.goal_factor_max = 4.0;
  return spec;
}

std::vector<SampledJob> DrawJobs(int n, std::uint64_t seed = 7) {
  HeavyTailJobSampler sampler(TestJobSpec(), Rng(seed));
  std::vector<SampledJob> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) jobs.push_back(sampler.Sample());
  return jobs;
}

/// Average rank with ties sharing their midrank.
std::vector<double> Ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) /
                               2.0 +
                           1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  return ranks;
}

double Pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

TEST(HeavyTailStatTest, WorkPassesKolmogorovSmirnovAgainstAnalyticCdf) {
  const auto jobs = DrawJobs(kSamples);
  std::vector<double> work;
  work.reserve(jobs.size());
  for (const SampledJob& j : jobs) work.push_back(j.work);
  std::sort(work.begin(), work.end());

  const BoundedParetoSpec& pareto = TestJobSpec().work;
  double d = 0.0;
  const double n = static_cast<double>(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double f = pareto.Cdf(work[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  // KS critical value at alpha = 0.001 for n = 20k is 1.95 / sqrt(n) =
  // 0.0138; the fixed seed lands well inside it.
  EXPECT_LT(d, 1.95 / std::sqrt(n));
}

TEST(HeavyTailStatTest, WorkMeanMatchesAnalyticMean) {
  const auto jobs = DrawJobs(kSamples);
  RunningStats work;
  for (const SampledJob& j : jobs) work.Add(j.work);
  const double mean = TestJobSpec().work.Mean();
  // Heavy tail (alpha = 1.7) makes the sample mean noisy; 10% absorbs it at
  // this seed and size while still catching a mis-parameterized sampler.
  EXPECT_NEAR(work.mean(), mean, mean * 0.10);
}

TEST(HeavyTailStatTest, WorkTailIndexRecoveredByHillEstimator) {
  const auto jobs = DrawJobs(kSamples);
  std::vector<double> work;
  work.reserve(jobs.size());
  for (const SampledJob& j : jobs) work.push_back(j.work);
  std::sort(work.begin(), work.end());

  // Hill estimator over the top 5% order statistics. The upper truncation
  // (H/L = 500) biases it slightly downward; +-0.25 covers the bias plus
  // sampling noise while separating alpha = 1.7 from, say, 1.2 or 2.2.
  const std::size_t k = work.size() / 20;
  const double threshold = work[work.size() - k - 1];
  double sum_log = 0.0;
  for (std::size_t i = work.size() - k; i < work.size(); ++i) {
    sum_log += std::log(work[i] / threshold);
  }
  const double alpha_hat = static_cast<double>(k) / sum_log;
  EXPECT_NEAR(alpha_hat, TestJobSpec().work.alpha, 0.25);
}

TEST(HeavyTailStatTest, MemoryMedianMatchesLognormalMedian) {
  const auto jobs = DrawJobs(kSamples);
  Sample memory;
  for (const SampledJob& j : jobs) memory.Add(j.memory);
  // The clamp to [256, 12288] MB trims both tails but cannot move the
  // median: exp(mu) = exp(7.496) ~ 1800 MB sits far from either bound.
  const double median = std::exp(TestJobSpec().memory.log_mean);
  EXPECT_NEAR(memory.median(), median, median * 0.05);
  EXPECT_GE(memory.min(), TestJobSpec().min_memory);
  EXPECT_LE(memory.max(), TestJobSpec().max_memory);
}

TEST(HeavyTailStatTest, SpeedMixturePassesChiSquared) {
  const auto jobs = DrawJobs(kSamples);
  const HeavyTailJobSpec spec = TestJobSpec();
  std::vector<int> counts(spec.speeds.size(), 0);
  for (const SampledJob& j : jobs) {
    for (std::size_t i = 0; i < spec.speeds.size(); ++i) {
      if (j.max_speed == spec.speeds[i].max_speed) {
        ++counts[i];
        break;
      }
    }
  }
  double total_weight = 0.0;
  for (const SpeedOption& s : spec.speeds) total_weight += s.weight;
  double chi2 = 0.0;
  int observed = 0;
  for (std::size_t i = 0; i < spec.speeds.size(); ++i) {
    const double expected =
        kSamples * spec.speeds[i].weight / total_weight;
    chi2 += (counts[i] - expected) * (counts[i] - expected) / expected;
    observed += counts[i];
  }
  ASSERT_EQ(observed, kSamples);  // every sample hit a configured speed
  // Chi-squared, 2 degrees of freedom, alpha = 0.001 -> 13.82.
  EXPECT_LT(chi2, 13.82);
}

TEST(HeavyTailStatTest, CpuMemoryCorrelationMatchesCopulaRho) {
  const auto jobs = DrawJobs(kSamples);
  std::vector<double> work;
  std::vector<double> memory;
  for (const SampledJob& j : jobs) {
    work.push_back(j.work);
    memory.push_back(j.memory);
  }
  // Spearman rank correlation is invariant under the monotone marginals, so
  // under a Gaussian copula it has the closed form (6/pi) asin(rho/2):
  // rho = 0.35 -> 0.336. Clamping ties a few percent of the memory column,
  // which midranks absorb.
  const double spearman = Pearson(Ranks(work), Ranks(memory));
  const double expected =
      6.0 / std::acos(-1.0) *
      std::asin(TestJobSpec().cpu_memory_correlation / 2.0);
  EXPECT_NEAR(spearman, expected, 0.04);
}

TEST(HeavyTailStatTest, GoalFactorsStayInConfiguredRange) {
  const auto jobs = DrawJobs(kSamples);
  const HeavyTailJobSpec spec = TestJobSpec();
  RunningStats goals;
  for (const SampledJob& j : jobs) {
    ASSERT_GE(j.goal_factor, spec.goal_factor_min);
    ASSERT_LT(j.goal_factor, spec.goal_factor_max);
    goals.Add(j.goal_factor);
  }
  const double mid = (spec.goal_factor_min + spec.goal_factor_max) / 2.0;
  EXPECT_NEAR(goals.mean(), mid, mid * 0.02);
}

TEST(DiurnalStatTest, BurstFreeRateIntegratesToDailyVolume) {
  DiurnalSpec spec;
  spec.daily_volume = 50.0 * 86'400.0;
  spec.period = 86'400.0;
  spec.harmonics = {{1, 0.45, -1.570796}, {2, 0.12, 1.047198}, {3, 0.05, 0.0}};
  // bursts disabled (mean_gap = 0): the integral must be exact up to
  // quadrature error.
  const DiurnalRate rate(spec, /*seed=*/3, /*horizon=*/spec.period);
  ASSERT_TRUE(rate.episodes().empty());

  const int steps = 86'400;
  const double h = spec.period / steps;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    // Midpoint rule: O(h^2) error on the smooth sinusoid sum, far below the
    // 1e-6 relative tolerance.
    integral += rate.RateAt((i + 0.5) * h) * h;
  }
  EXPECT_NEAR(integral, spec.daily_volume, spec.daily_volume * 1e-6);

  // Sum of |amplitudes| <= 1 guarantees the rate never clamps at zero —
  // the precondition for the volume identity.
  double min_rate = 1e300;
  for (int i = 0; i < steps; ++i) {
    min_rate = std::min(min_rate, rate.RateAt(i * h));
  }
  EXPECT_GT(min_rate, 0.0);
}

TEST(DiurnalStatTest, BurstMultiplierAppliesExactlyInsideEpisodes) {
  DiurnalSpec spec;
  spec.daily_volume = 10.0 * 86'400.0;
  spec.period = 86'400.0;
  spec.harmonics = {{1, 0.5, 0.0}};
  spec.burst_rate_multiplier = 1.8;
  spec.bursts = {/*mean_gap=*/7'200.0, /*mean_duration=*/600.0,
                 /*min_duration=*/120.0, /*max_duration=*/1'800.0};
  const DiurnalRate rate(spec, /*seed=*/11, /*horizon=*/spec.period);
  ASSERT_FALSE(rate.episodes().empty());
  for (const BurstEpisode& e : rate.episodes()) {
    const Seconds mid = e.start + e.duration / 2.0;
    EXPECT_DOUBLE_EQ(rate.RateAt(mid),
                     rate.BaselineRateAt(mid) * spec.burst_rate_multiplier);
    const Seconds outside = e.end() + 1e-6;
    if (!InEpisode(rate.episodes(), outside)) {
      EXPECT_DOUBLE_EQ(rate.RateAt(outside), rate.BaselineRateAt(outside));
    }
  }
}

TEST(BurstStatTest, EpisodeDurationsRespectConfiguredBounds) {
  BurstSpec spec{/*mean_gap=*/1'000.0, /*mean_duration=*/300.0,
                 /*min_duration=*/60.0, /*max_duration=*/900.0};
  spec.Validate();
  Rng rng(5);
  const Seconds horizon = 3'000'000.0;
  const auto episodes = SampleBurstEpisodes(rng, spec, horizon);
  ASSERT_GT(episodes.size(), 1'000u);  // enough to exercise both clamps
  Seconds prev_end = 0.0;
  bool clamped_low = false;
  bool clamped_high = false;
  for (const BurstEpisode& e : episodes) {
    EXPECT_GE(e.duration, spec.min_duration);
    EXPECT_LE(e.duration, spec.max_duration);
    EXPECT_GE(e.start, prev_end);  // sorted, non-overlapping
    EXPECT_LT(e.start, horizon);
    prev_end = e.end();
    clamped_low = clamped_low || e.duration == spec.min_duration;
    clamped_high = clamped_high || e.duration == spec.max_duration;
  }
  // With mean 300 in [60, 900], both clamps must trigger at this volume —
  // i.e. the bounds are genuinely enforced, not vacuously satisfied.
  EXPECT_TRUE(clamped_low);
  EXPECT_TRUE(clamped_high);
}

TEST(MmppStatTest, ArrivalCountMatchesIntegratedIntensity) {
  MmppSpec spec;
  spec.mean_interarrival = 30.0;
  spec.burst_rate_multiplier = 6.0;
  spec.bursts = {/*mean_gap=*/3'600.0, /*mean_duration=*/240.0,
                 /*min_duration=*/60.0, /*max_duration=*/600.0};
  const Seconds horizon = 500'000.0;
  MmppArrivalProcess process(spec, /*seed=*/13, horizon);

  Seconds burst_time = 0.0;
  for (const BurstEpisode& e : process.episodes()) burst_time += e.duration;
  const double expected =
      spec.base_rate() *
      (horizon + (spec.burst_rate_multiplier - 1.0) * burst_time);

  int count = 0;
  Seconds prev = 0.0;
  while (true) {
    const Seconds t = process.NextArrival();
    if (t >= horizon) break;
    ASSERT_GT(t, prev);  // strictly increasing
    prev = t;
    ++count;
  }
  // Poisson count: 5 sigma around the integrated intensity.
  EXPECT_NEAR(count, expected, 5.0 * std::sqrt(expected));
  // The bursts must contribute visibly: the count is far above what the
  // baseline alone would produce.
  EXPECT_GT(count, spec.base_rate() * horizon + 4.0 * std::sqrt(expected));
}

TEST(MmppStatTest, BurstRateObservedInsideEpisodes) {
  MmppSpec spec;
  spec.mean_interarrival = 10.0;
  spec.burst_rate_multiplier = 8.0;
  spec.bursts = {/*mean_gap=*/2'000.0, /*mean_duration=*/500.0,
                 /*min_duration=*/100.0, /*max_duration=*/1'500.0};
  const Seconds horizon = 400'000.0;
  MmppArrivalProcess process(spec, /*seed=*/17, horizon);

  Seconds burst_time = 0.0;
  for (const BurstEpisode& e : process.episodes()) burst_time += e.duration;
  ASSERT_GT(burst_time, 0.0);

  int in_burst = 0;
  int outside = 0;
  while (true) {
    const Seconds t = process.NextArrival();
    if (t >= horizon) break;
    if (InEpisode(process.episodes(), t)) {
      ++in_burst;
    } else {
      ++outside;
    }
  }
  const double burst_rate = in_burst / burst_time;
  const double outside_rate = outside / (horizon - burst_time);
  EXPECT_NEAR(burst_rate, spec.base_rate() * spec.burst_rate_multiplier,
              spec.base_rate() * spec.burst_rate_multiplier * 0.10);
  EXPECT_NEAR(outside_rate, spec.base_rate(), spec.base_rate() * 0.05);
}

}  // namespace
}  // namespace mwp::workload
